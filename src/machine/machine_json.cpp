// JSON front-end for MachineDesc. The grammar the format needs is tiny
// — objects, arrays, strings, integers, booleans — so a dependency-free
// recursive-descent parser is used rather than pulling in a JSON
// library (the container bakes in no third-party packages). Numbers are
// integers only: every quantity in a machine description (cycle counts,
// byte sizes, channel ids) is integral, and rejecting floats keeps
// to_json() round-trips exact.
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "machine/machine_desc.hpp"

namespace mbcosim::machine {

namespace {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Insertion order is irrelevant for the machine schema, so a sorted
/// map keeps lookup simple.
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, long long, std::string, JsonArray,
               JsonObject>
      data = nullptr;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<JsonObject>(data);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<JsonArray>(data);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(data);
  }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<long long>(data);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(data);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Parse the whole document into `out`; empty string on success,
  /// "[json-syntax] ..." otherwise (same convention as the parse_*
  /// helpers below).
  std::string parse(JsonValue& out) {
    if (std::string err = parse_value(out); !err.empty()) return err;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return {};
  }

 private:
  std::string fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return "[json-syntax] " + what + " at line " + std::to_string(line) +
           ", column " + std::to_string(col);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  // Each parse_* returns an empty string on success, an error otherwise.
  std::string parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') return parse_string_value(out);
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return parse_number(out);
    }
    if (literal("true")) {
      out.data = true;
      return {};
    }
    if (literal("false")) {
      out.data = false;
      return {};
    }
    if (literal("null")) {
      out.data = nullptr;
      return {};
    }
    return fail(std::string("unexpected character '") + c + "'");
  }

  std::string parse_object(JsonValue& out) {
    consume('{');
    JsonObject object;
    skip_ws();
    if (consume('}')) {
      out.data = std::move(object);
      return {};
    }
    while (true) {
      JsonValue key;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected string key");
      }
      if (std::string err = parse_string_value(key); !err.empty()) return err;
      if (!consume(':')) return fail("expected ':' after key");
      JsonValue value;
      if (std::string err = parse_value(value); !err.empty()) return err;
      object.emplace(std::get<std::string>(std::move(key.data)),
                     std::move(value));
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}' in object");
    }
    out.data = std::move(object);
    return {};
  }

  std::string parse_array(JsonValue& out) {
    consume('[');
    JsonArray array;
    skip_ws();
    if (consume(']')) {
      out.data = std::move(array);
      return {};
    }
    while (true) {
      JsonValue value;
      if (std::string err = parse_value(value); !err.empty()) return err;
      array.push_back(std::move(value));
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']' in array");
    }
    out.data = std::move(array);
    return {};
  }

  std::string parse_string_value(JsonValue& out) {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        out.data = std::move(value);
        return {};
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': value += '"'; break;
          case '\\': value += '\\'; break;
          case '/': value += '/'; break;
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case 'r': value += '\r'; break;
          default:
            return fail(std::string("unsupported escape '\\") + escape + "'");
        }
        continue;
      }
      value += c;
    }
    return fail("unterminated string");
  }

  std::string parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == 'e' ||
                                text_[pos_] == 'E')) {
      return fail("machine descriptions use integer numbers only");
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("malformed number");
    try {
      out.data = std::stoll(token);
    } catch (const std::exception&) {
      return fail("number out of range: " + token);
    }
    return {};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema mapping: JsonValue -> MachineDesc with per-field diagnostics.

std::string where(const std::string& context) {
  return context.empty() ? std::string() : " in " + context;
}

std::string get_string(const JsonObject& object, const char* key,
                       const std::string& context, bool required,
                       std::string& out) {
  const auto it = object.find(key);
  if (it == object.end()) {
    if (!required) return {};
    return std::string("[missing-field] required key '") + key + "'" +
           where(context);
  }
  if (!it->second.is_string()) {
    return std::string("[bad-field] '") + key + "' must be a string" +
           where(context);
  }
  out = std::get<std::string>(it->second.data);
  return {};
}

std::string get_int(const JsonObject& object, const char* key,
                    const std::string& context, bool required, long long& out) {
  const auto it = object.find(key);
  if (it == object.end()) {
    if (!required) return {};
    return std::string("[missing-field] required key '") + key + "'" +
           where(context);
  }
  if (!it->second.is_int()) {
    return std::string("[bad-field] '") + key + "' must be an integer" +
           where(context);
  }
  out = std::get<long long>(it->second.data);
  return {};
}

std::string get_bool(const JsonObject& object, const char* key,
                     const std::string& context, bool& out) {
  const auto it = object.find(key);
  if (it == object.end()) return {};
  if (!it->second.is_bool()) {
    return std::string("[bad-field] '") + key + "' must be true or false" +
           where(context);
  }
  out = std::get<bool>(it->second.data);
  return {};
}

std::string get_unsigned(const JsonObject& object, const char* key,
                         const std::string& context, bool required,
                         long long fallback, unsigned& out) {
  long long value = fallback;
  if (std::string err = get_int(object, key, context, required, value);
      !err.empty()) {
    return err;
  }
  if (value < 0) {
    return std::string("[bad-field] '") + key + "' must be non-negative" +
           where(context);
  }
  out = static_cast<unsigned>(value);
  return {};
}

std::string read_core(const JsonObject& object, CoreDesc& core) {
  std::string err = get_string(object, "name", "core", true, core.name);
  if (!err.empty()) return err;
  const std::string context = "core '" + core.name + "'";
  if (err = get_string(object, "program", context, false, core.program);
      !err.empty()) {
    return err;
  }
  if (err = get_string(object, "program_file", context, false,
                       core.program_file);
      !err.empty()) {
    return err;
  }
  long long memory = static_cast<long long>(core.memory_bytes);
  if (err = get_int(object, "memory_bytes", context, false, memory);
      !err.empty()) {
    return err;
  }
  if (memory <= 0) {
    return "[bad-memory] " + context + ": memory_bytes must be positive";
  }
  core.memory_bytes = static_cast<std::size_t>(memory);
  if (err = get_bool(object, "barrel_shifter", context,
                     core.has_barrel_shifter);
      !err.empty()) {
    return err;
  }
  if (err = get_bool(object, "multiplier", context, core.has_multiplier);
      !err.empty()) {
    return err;
  }
  if (err = get_bool(object, "divider", context, core.has_divider);
      !err.empty()) {
    return err;
  }
  if (err = get_bool(object, "predecode", context, core.predecode);
      !err.empty()) {
    return err;
  }
  std::string tier_name;
  if (err = get_string(object, "exec_tier", context, false, tier_name);
      !err.empty()) {
    return err;
  }
  if (!tier_name.empty()) {
    const auto tier = iss::parse_exec_tier(tier_name);
    if (!tier) {
      return "[bad-exec-tier] " + context + ": exec_tier '" + tier_name +
             "' is not one of precise/predecode/dbt";
    }
    core.exec_tier = *tier;
  }
  return {};
}

std::string read_link(const JsonObject& object, LinkDesc& link) {
  std::string err = get_string(object, "from", "link", true, link.from);
  if (!err.empty()) return err;
  if (err = get_string(object, "to", "link", true, link.to); !err.empty()) {
    return err;
  }
  const std::string context = "link " + link.from + " -> " + link.to;
  if (err = get_unsigned(object, "from_channel", context, true, 0,
                         link.from_channel);
      !err.empty()) {
    return err;
  }
  return get_unsigned(object, "to_channel", context, true, 0, link.to_channel);
}

std::string read_peripheral(const JsonObject& object, PeripheralDesc& p) {
  std::string err = get_string(object, "core", "peripheral", true, p.core);
  if (!err.empty()) return err;
  if (err = get_string(object, "type", "peripheral", true, p.type);
      !err.empty()) {
    return err;
  }
  const std::string context = "peripheral '" + p.type + "' on '" + p.core + "'";
  if (err = get_unsigned(object, "channel", context, false, 0, p.channel);
      !err.empty()) {
    return err;
  }
  // Every other integer key is a type-specific parameter forwarded to
  // the peripheral factory ("num_pes", "block_size", ...).
  for (const auto& [key, value] : object) {
    if (key == "core" || key == "type" || key == "channel") continue;
    if (!value.is_int()) {
      return "[bad-field] parameter '" + key + "' must be an integer" +
             where(context);
    }
    p.params[key] = std::get<long long>(value.data);
  }
  return {};
}

Expected<MachineDesc> build_desc(const JsonValue& root) {
  using Result = Expected<MachineDesc>;
  if (!root.is_object()) {
    return Result::failure(
        "[bad-field] machine description must be a JSON object");
  }
  const auto& top = std::get<JsonObject>(root.data);

  MachineDesc desc;
  long long quantum = static_cast<long long>(desc.quantum);
  if (std::string err = get_int(top, "quantum", "machine", false, quantum);
      !err.empty()) {
    return Result::failure(err);
  }
  if (quantum <= 0) {
    return Result::failure(
        "[bad-quantum] synchronization quantum must be at least 1 cycle");
  }
  desc.quantum = static_cast<Cycle>(quantum);

  long long depth = static_cast<long long>(desc.fifo_depth);
  if (std::string err = get_int(top, "fifo_depth", "machine", false, depth);
      !err.empty()) {
    return Result::failure(err);
  }
  if (depth <= 0) {
    return Result::failure("[bad-fifo-depth] FSL FIFO depth must be >= 1");
  }
  desc.fifo_depth = static_cast<std::size_t>(depth);

  const auto cores_it = top.find("cores");
  if (cores_it == top.end()) {
    return Result::failure("[missing-field] required key 'cores' in machine");
  }
  if (!cores_it->second.is_array()) {
    return Result::failure("[bad-field] 'cores' must be an array");
  }
  for (const JsonValue& entry : std::get<JsonArray>(cores_it->second.data)) {
    if (!entry.is_object()) {
      return Result::failure("[bad-field] each core must be an object");
    }
    CoreDesc core;
    if (std::string err = read_core(std::get<JsonObject>(entry.data), core);
        !err.empty()) {
      return Result::failure(err);
    }
    desc.cores.push_back(std::move(core));
  }

  if (const auto it = top.find("links"); it != top.end()) {
    if (!it->second.is_array()) {
      return Result::failure("[bad-field] 'links' must be an array");
    }
    for (const JsonValue& entry : std::get<JsonArray>(it->second.data)) {
      if (!entry.is_object()) {
        return Result::failure("[bad-field] each link must be an object");
      }
      LinkDesc link;
      if (std::string err = read_link(std::get<JsonObject>(entry.data), link);
          !err.empty()) {
        return Result::failure(err);
      }
      desc.links.push_back(std::move(link));
    }
  }

  if (const auto it = top.find("peripherals"); it != top.end()) {
    if (!it->second.is_array()) {
      return Result::failure("[bad-field] 'peripherals' must be an array");
    }
    for (const JsonValue& entry : std::get<JsonArray>(it->second.data)) {
      if (!entry.is_object()) {
        return Result::failure("[bad-field] each peripheral must be an object");
      }
      PeripheralDesc p;
      if (std::string err =
              read_peripheral(std::get<JsonObject>(entry.data), p);
          !err.empty()) {
        return Result::failure(err);
      }
      desc.peripherals.push_back(std::move(p));
    }
  }

  if (Status status = desc.validate(); !status.ok) {
    return Result::failure(status.message);
  }
  return desc;
}

}  // namespace

Expected<MachineDesc> MachineDesc::from_json(const std::string& text) {
  Parser parser(text);
  JsonValue root;
  if (std::string err = parser.parse(root); !err.empty()) {
    return Expected<MachineDesc>::failure(err);
  }
  return build_desc(root);
}

Expected<MachineDesc> MachineDesc::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Expected<MachineDesc>::failure(
        "[file-io] cannot open machine file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Expected<MachineDesc> parsed = from_json(buffer.str());
  if (!parsed) {
    return Expected<MachineDesc>::failure(parsed.error() + " (in '" + path +
                                          "')");
  }
  MachineDesc desc = std::move(parsed).value();
  // Program files named relative to the machine file, as a description
  // naturally writes them, resolve against its directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
  if (!dir.empty()) {
    for (CoreDesc& core : desc.cores) {
      if (!core.program_file.empty() && core.program_file.front() != '/') {
        core.program_file = dir + core.program_file;
      }
    }
  }
  return desc;
}

}  // namespace mbcosim::machine
