// JSON front-end for MachineDesc, built on the shared integer-only
// parser in common/json (one grammar for machine files and the
// simulation server's protocol). This file owns only the schema
// mapping: common::json::Value -> MachineDesc with per-field
// diagnostics under the stable kDescErrorCodes convention.
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "common/json.hpp"
#include "machine/machine_desc.hpp"

namespace mbcosim::machine {

namespace {

using common::json::get_bool;
using common::json::get_int;
using common::json::get_string;
using common::json::get_unsigned;
using common::json::Value;

std::string where(const std::string& context) {
  return context.empty() ? std::string() : " in " + context;
}

std::string read_core(const common::json::Object& object, CoreDesc& core) {
  std::string err = get_string(object, "name", "core", true, core.name);
  if (!err.empty()) return err;
  const std::string context = "core '" + core.name + "'";
  if (err = get_string(object, "program", context, false, core.program);
      !err.empty()) {
    return err;
  }
  if (err = get_string(object, "program_file", context, false,
                       core.program_file);
      !err.empty()) {
    return err;
  }
  long long memory = static_cast<long long>(core.memory_bytes);
  if (err = get_int(object, "memory_bytes", context, false, memory);
      !err.empty()) {
    return err;
  }
  if (memory <= 0) {
    return "[bad-memory] " + context + ": memory_bytes must be positive";
  }
  core.memory_bytes = static_cast<std::size_t>(memory);
  if (err = get_bool(object, "barrel_shifter", context,
                     core.has_barrel_shifter);
      !err.empty()) {
    return err;
  }
  if (err = get_bool(object, "multiplier", context, core.has_multiplier);
      !err.empty()) {
    return err;
  }
  if (err = get_bool(object, "divider", context, core.has_divider);
      !err.empty()) {
    return err;
  }
  if (err = get_bool(object, "predecode", context, core.predecode);
      !err.empty()) {
    return err;
  }
  std::string tier_name;
  if (err = get_string(object, "exec_tier", context, false, tier_name);
      !err.empty()) {
    return err;
  }
  if (!tier_name.empty()) {
    const auto tier = iss::parse_exec_tier(tier_name);
    if (!tier) {
      return "[bad-exec-tier] " + context + ": exec_tier '" + tier_name +
             "' is not one of precise/predecode/dbt";
    }
    core.exec_tier = *tier;
  }
  return {};
}

std::string read_link(const common::json::Object& object, LinkDesc& link) {
  std::string err = get_string(object, "from", "link", true, link.from);
  if (!err.empty()) return err;
  if (err = get_string(object, "to", "link", true, link.to); !err.empty()) {
    return err;
  }
  const std::string context = "link " + link.from + " -> " + link.to;
  if (err = get_unsigned(object, "from_channel", context, true, 0,
                         link.from_channel);
      !err.empty()) {
    return err;
  }
  return get_unsigned(object, "to_channel", context, true, 0, link.to_channel);
}

std::string read_peripheral(const common::json::Object& object,
                            PeripheralDesc& p) {
  std::string err = get_string(object, "core", "peripheral", true, p.core);
  if (!err.empty()) return err;
  if (err = get_string(object, "type", "peripheral", true, p.type);
      !err.empty()) {
    return err;
  }
  const std::string context = "peripheral '" + p.type + "' on '" + p.core + "'";
  if (err = get_unsigned(object, "channel", context, false, 0, p.channel);
      !err.empty()) {
    return err;
  }
  // Every other integer key is a type-specific parameter forwarded to
  // the peripheral factory ("num_pes", "block_size", ...).
  for (const auto& [key, value] : object) {
    if (key == "core" || key == "type" || key == "channel") continue;
    if (!value.is_int()) {
      return "[bad-field] parameter '" + key + "' must be an integer" +
             where(context);
    }
    p.params[key] = value.integer();
  }
  return {};
}

Expected<MachineDesc> build_desc(const Value& root) {
  using Result = Expected<MachineDesc>;
  if (!root.is_object()) {
    return Result::failure(
        "[bad-field] machine description must be a JSON object");
  }
  const auto& top = root.object();

  MachineDesc desc;
  long long quantum = static_cast<long long>(desc.quantum);
  if (std::string err = get_int(top, "quantum", "machine", false, quantum);
      !err.empty()) {
    return Result::failure(err);
  }
  if (quantum <= 0) {
    return Result::failure(
        "[bad-quantum] synchronization quantum must be at least 1 cycle");
  }
  desc.quantum = static_cast<Cycle>(quantum);

  long long depth = static_cast<long long>(desc.fifo_depth);
  if (std::string err = get_int(top, "fifo_depth", "machine", false, depth);
      !err.empty()) {
    return Result::failure(err);
  }
  if (depth <= 0) {
    return Result::failure("[bad-fifo-depth] FSL FIFO depth must be >= 1");
  }
  desc.fifo_depth = static_cast<std::size_t>(depth);

  const auto cores_it = top.find("cores");
  if (cores_it == top.end()) {
    return Result::failure("[missing-field] required key 'cores' in machine");
  }
  if (!cores_it->second.is_array()) {
    return Result::failure("[bad-field] 'cores' must be an array");
  }
  for (const Value& entry : cores_it->second.array()) {
    if (!entry.is_object()) {
      return Result::failure("[bad-field] each core must be an object");
    }
    CoreDesc core;
    if (std::string err = read_core(entry.object(), core); !err.empty()) {
      return Result::failure(err);
    }
    desc.cores.push_back(std::move(core));
  }

  if (const auto it = top.find("links"); it != top.end()) {
    if (!it->second.is_array()) {
      return Result::failure("[bad-field] 'links' must be an array");
    }
    for (const Value& entry : it->second.array()) {
      if (!entry.is_object()) {
        return Result::failure("[bad-field] each link must be an object");
      }
      LinkDesc link;
      if (std::string err = read_link(entry.object(), link); !err.empty()) {
        return Result::failure(err);
      }
      desc.links.push_back(std::move(link));
    }
  }

  if (const auto it = top.find("peripherals"); it != top.end()) {
    if (!it->second.is_array()) {
      return Result::failure("[bad-field] 'peripherals' must be an array");
    }
    for (const Value& entry : it->second.array()) {
      if (!entry.is_object()) {
        return Result::failure("[bad-field] each peripheral must be an object");
      }
      PeripheralDesc p;
      if (std::string err = read_peripheral(entry.object(), p); !err.empty()) {
        return Result::failure(err);
      }
      desc.peripherals.push_back(std::move(p));
    }
  }

  if (Status status = desc.validate(); !status.ok) {
    return Result::failure(status.message);
  }
  return desc;
}

}  // namespace

Expected<MachineDesc> MachineDesc::from_value(const common::json::Value& root) {
  return build_desc(root);
}

Expected<MachineDesc> MachineDesc::from_json(const std::string& text) {
  Expected<Value> root = common::json::parse(text);
  if (!root) {
    return Expected<MachineDesc>::failure(root.error());
  }
  return build_desc(root.value());
}

Expected<MachineDesc> MachineDesc::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Expected<MachineDesc>::failure(
        "[file-io] cannot open machine file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Expected<MachineDesc> parsed = from_json(buffer.str());
  if (!parsed) {
    return Expected<MachineDesc>::failure(parsed.error() + " (in '" + path +
                                          "')");
  }
  MachineDesc desc = std::move(parsed).value();
  // Program files named relative to the machine file, as a description
  // naturally writes them, resolve against its directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
  if (!dir.empty()) {
    for (CoreDesc& core : desc.cores) {
      if (!core.program_file.empty() && core.program_file.front() != '/') {
        core.program_file = dir + core.program_file;
      }
    }
  }
  return desc;
}

}  // namespace mbcosim::machine
