#include "machine/machine_desc.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace mbcosim::machine {

namespace {

constexpr unsigned kFslChannels = 8;  // fsl::FslHub::kChannels

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '_';
  });
}

/// JSON string literal with the same minimal escaping the JSONL sink
/// uses; names are validated to a safe alphabet but program text may
/// carry quotes, backslashes and newlines.
std::string quoted(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
  out += '"';
  return out;
}

}  // namespace

MachineDesc MachineDesc::single_core(std::string program) {
  MachineDesc desc;
  CoreDesc core;
  core.name = "cpu0";
  core.program = std::move(program);
  desc.cores.push_back(std::move(core));
  return desc;
}

MachineDesc MachineDesc::replicated(std::size_t count, CoreDesc core_template) {
  MachineDesc desc;
  const std::string stem =
      core_template.name.empty() ? std::string("cpu") : core_template.name;
  desc.cores.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CoreDesc core = core_template;
    core.name = stem + std::to_string(i);
    desc.cores.push_back(std::move(core));
  }
  return desc;
}

std::size_t MachineDesc::core_index(const std::string& name) const {
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (cores[i].name == name) return i;
  }
  return cores.size();
}

const CoreDesc* MachineDesc::find_core(const std::string& name) const {
  const std::size_t index = core_index(name);
  return index < cores.size() ? &cores[index] : nullptr;
}

Status MachineDesc::validate() const {
  if (cores.empty()) {
    return Status::failure("[no-cores] machine defines no cores");
  }
  if (quantum == 0) {
    return Status::failure(
        "[bad-quantum] synchronization quantum must be at least 1 cycle");
  }
  if (fifo_depth == 0) {
    return Status::failure("[bad-fifo-depth] FSL FIFO depth must be >= 1");
  }

  std::set<std::string> names;
  for (const CoreDesc& core : cores) {
    if (!valid_name(core.name)) {
      return Status::failure("[bad-core-name] core name '" + core.name +
                             "' must be non-empty [A-Za-z0-9_]+");
    }
    if (!names.insert(core.name).second) {
      return Status::failure("[duplicate-core] core name '" + core.name +
                             "' is declared twice");
    }
    if (core.program.empty() && core.program_file.empty()) {
      return Status::failure("[no-program] core '" + core.name +
                             "' has neither 'program' nor 'program_file'");
    }
    if (!core.program.empty() && !core.program_file.empty()) {
      return Status::failure("[program-conflict] core '" + core.name +
                             "' sets both 'program' and 'program_file'");
    }
    if (core.memory_bytes == 0 || core.memory_bytes % 4 != 0) {
      return Status::failure("[bad-memory] core '" + core.name +
                             "': memory_bytes must be a positive multiple "
                             "of 4, got " +
                             std::to_string(core.memory_bytes));
    }
  }

  // Channel graph: every (core, direction, channel) endpoint may have at
  // most one occupant. A peripheral occupies both directions of its
  // channel; a link occupies the writer's to_hw side and the reader's
  // from_hw side.
  std::set<std::pair<std::string, unsigned>> to_hw_taken;
  std::set<std::pair<std::string, unsigned>> from_hw_taken;
  for (const PeripheralDesc& p : peripherals) {
    if (find_core(p.core) == nullptr) {
      return Status::failure("[unknown-core] peripheral '" + p.type +
                             "' placed on undeclared core '" + p.core + "'");
    }
    if (p.channel >= kFslChannels) {
      return Status::failure(
          "[channel-range] peripheral '" + p.type + "' on core '" + p.core +
          "': channel " + std::to_string(p.channel) + " exceeds " +
          std::to_string(kFslChannels - 1));
    }
    if (!to_hw_taken.insert({p.core, p.channel}).second ||
        !from_hw_taken.insert({p.core, p.channel}).second) {
      return Status::failure("[channel-conflict] core '" + p.core +
                             "' channel " + std::to_string(p.channel) +
                             " is claimed by more than one peripheral");
    }
  }
  for (const LinkDesc& link : links) {
    if (find_core(link.from) == nullptr) {
      return Status::failure("[unknown-core] link source '" + link.from +
                             "' is not a declared core");
    }
    if (find_core(link.to) == nullptr) {
      return Status::failure("[unknown-core] link target '" + link.to +
                             "' is not a declared core");
    }
    if (link.from_channel >= kFslChannels || link.to_channel >= kFslChannels) {
      return Status::failure(
          "[channel-range] link " + link.from + ":" +
          std::to_string(link.from_channel) + " -> " + link.to + ":" +
          std::to_string(link.to_channel) + ": channels must be 0.." +
          std::to_string(kFslChannels - 1));
    }
    if (link.from == link.to) {
      return Status::failure("[self-link] core '" + link.from +
                             "' may not link to itself");
    }
    if (!to_hw_taken.insert({link.from, link.from_channel}).second) {
      return Status::failure(
          "[link-conflict] output channel " + link.from + ":" +
          std::to_string(link.from_channel) +
          " already feeds another link or peripheral");
    }
    if (!from_hw_taken.insert({link.to, link.to_channel}).second) {
      return Status::failure(
          "[link-conflict] input channel " + link.to + ":" +
          std::to_string(link.to_channel) +
          " is already fed by another link or peripheral");
    }
  }
  return {};
}

std::string MachineDesc::to_json() const {
  std::string out = "{\n";
  out += "  \"quantum\": " + std::to_string(quantum) + ",\n";
  out += "  \"fifo_depth\": " + std::to_string(fifo_depth) + ",\n";
  out += "  \"cores\": [";
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const CoreDesc& core = cores[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + quoted(core.name);
    if (!core.program_file.empty()) {
      out += ", \"program_file\": " + quoted(core.program_file);
    } else {
      out += ", \"program\": " + quoted(core.program);
    }
    out += ", \"memory_bytes\": " + std::to_string(core.memory_bytes);
    out += ", \"barrel_shifter\": ";
    out += core.has_barrel_shifter ? "true" : "false";
    out += ", \"multiplier\": ";
    out += core.has_multiplier ? "true" : "false";
    out += ", \"divider\": ";
    out += core.has_divider ? "true" : "false";
    out += ", \"predecode\": ";
    out += core.predecode ? "true" : "false";
    out += ", \"exec_tier\": ";
    out += quoted(iss::to_string(core.exec_tier));
    out += "}";
  }
  out += cores.empty() ? "],\n" : "\n  ],\n";
  out += "  \"links\": [";
  for (std::size_t i = 0; i < links.size(); ++i) {
    const LinkDesc& link = links[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"from\": " + quoted(link.from) +
           ", \"from_channel\": " + std::to_string(link.from_channel) +
           ", \"to\": " + quoted(link.to) +
           ", \"to_channel\": " + std::to_string(link.to_channel) + "}";
  }
  out += links.empty() ? "],\n" : "\n  ],\n";
  out += "  \"peripherals\": [";
  for (std::size_t i = 0; i < peripherals.size(); ++i) {
    const PeripheralDesc& p = peripherals[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"core\": " + quoted(p.core) + ", \"type\": " +
           quoted(p.type) + ", \"channel\": " + std::to_string(p.channel);
    for (const auto& [key, value] : p.params) {
      out += ", " + quoted(key) + ": " + std::to_string(value);
    }
    out += "}";
  }
  out += peripherals.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace mbcosim::machine
