// The full set of FSL links around one soft processor: up to 8 channels
// from the processor to the hardware peripherals ("to_hw", the processor
// is FIFO master) and up to 8 back ("from_hw", the processor is FIFO
// slave), as in the paper's Figure 3.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "ckpt/ckpt.hpp"
#include "common/status.hpp"
#include "fsl/fsl_channel.hpp"

namespace mbcosim::fsl {

class FslHub {
 public:
  static constexpr unsigned kChannels = 8;

  /// `name_prefix` scopes the channel names ("cpu1." gives
  /// "cpu1.mb_to_hw0", ...) so the hubs of a multi-core machine stay
  /// distinguishable in traces and deadlock diagnoses; the default empty
  /// prefix keeps the historical single-core names.
  explicit FslHub(std::size_t depth = FslChannel::kDefaultDepth,
                  const std::string& name_prefix = {})
      : to_hw_{make_bank(name_prefix + "mb_to_hw", depth)},
        from_hw_{make_bank(name_prefix + "hw_to_mb", depth)} {}

  /// Channel the processor writes with put/cput/nput/ncput.
  [[nodiscard]] FslChannel& to_hw(unsigned id) {
    check(id);
    return to_hw_[id];
  }
  [[nodiscard]] const FslChannel& to_hw(unsigned id) const {
    check(id);
    return to_hw_[id];
  }
  /// Channel the processor reads with get/cget/nget/ncget.
  [[nodiscard]] FslChannel& from_hw(unsigned id) {
    check(id);
    return from_hw_[id];
  }
  [[nodiscard]] const FslChannel& from_hw(unsigned id) const {
    check(id);
    return from_hw_[id];
  }

  void clear() {
    for (auto& ch : to_hw_) ch.clear();
    for (auto& ch : from_hw_) ch.clear();
  }

  /// Return every channel to fault-free operation (src/fault).
  void clear_faults() noexcept {
    for (auto& ch : to_hw_) ch.clear_fault();
    for (auto& ch : from_hw_) ch.clear_fault();
  }

  /// Attach the observability bus to every channel (nullptr to detach).
  void set_trace_bus(obs::TraceBus* bus) noexcept {
    for (auto& ch : to_hw_) ch.set_trace_bus(bus);
    for (auto& ch : from_hw_) ch.set_trace_bus(bus);
  }

  /// Checkpoint all 16 channels (FIFO contents, stats, armed faults).
  void save_state(ckpt::Writer& writer) const {
    for (const auto& ch : to_hw_) ch.save_state(writer);
    for (const auto& ch : from_hw_) ch.save_state(writer);
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) {
    for (auto& ch : to_hw_) {
      if (!ch.load_state(reader)) return false;
    }
    for (auto& ch : from_hw_) {
      if (!ch.load_state(reader)) return false;
    }
    return true;
  }

 private:
  using Bank = std::array<FslChannel, kChannels>;

  static Bank make_bank(const std::string& prefix, std::size_t depth) {
    return Bank{FslChannel(depth, prefix + "0"), FslChannel(depth, prefix + "1"),
                FslChannel(depth, prefix + "2"), FslChannel(depth, prefix + "3"),
                FslChannel(depth, prefix + "4"), FslChannel(depth, prefix + "5"),
                FslChannel(depth, prefix + "6"),
                FslChannel(depth, prefix + "7")};
  }

  static void check(unsigned id) {
    if (id >= kChannels) {
      throw SimError("FslHub: channel id out of range: " + std::to_string(id));
    }
  }

  Bank to_hw_;
  Bank from_hw_;
};

}  // namespace mbcosim::fsl
