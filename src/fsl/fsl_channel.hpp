// Cycle-accurate arithmetic-level model of a Xilinx Fast Simplex Link.
//
// FSLs are unidirectional FIFOs carrying a 32-bit data word plus one
// control bit per entry (paper Section III-B). The MicroBlaze-class
// processor owns up to 8 input and 8 output channels. The model exposes
// the FSL handshake flags by their paper names:
//   - `exists` (Out#_exists): data available on the read side;
//   - `full`   (In#_full): FIFO cannot accept another word.
// Blocking/non-blocking behaviour lives in the ISS / co-simulation engine
// (a blocking access stalls the processor until the flag allows progress);
// this class is the FIFO state machine itself.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "obs/trace_bus.hpp"

namespace mbcosim::fsl {

/// One FIFO entry: data word + control bit. The control bit is how the
/// paper's applications send configuration words (e.g. the CORDIC C0
/// constant and the matrix-B block elements) down the same channel as data.
struct FslEntry {
  Word data = 0;
  bool control = false;

  friend bool operator==(const FslEntry&, const FslEntry&) = default;
};

class FslChannel {
 public:
  /// Default FIFO depth matches the Xilinx FSL core default of 16 entries.
  static constexpr std::size_t kDefaultDepth = 16;

  explicit FslChannel(std::size_t depth = kDefaultDepth,
                      std::string name = "fsl");

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t occupancy() const noexcept { return fifo_.size(); }

  /// In#_full flag: true when a write would be refused.
  [[nodiscard]] bool full() const noexcept { return fifo_.size() >= depth_; }
  /// Out#_exists flag: true when a read can occur.
  [[nodiscard]] bool exists() const noexcept { return !fifo_.empty(); }

  /// Master-side write. Returns false (and drops nothing) when full.
  bool try_write(Word data, bool control);

  /// Slave-side read. Empty optional when no data exists.
  std::optional<FslEntry> try_read();

  /// Inspect the head without consuming it.
  [[nodiscard]] std::optional<FslEntry> peek() const;

  void clear();

  // Occupancy statistics, used by the co-simulation engine's reports and
  // by the data-set sizing logic the paper describes in Section IV-A ("the
  // size of each set of data is selected carefully so that the results
  // would not overflow the FIFOs").
  [[nodiscard]] u64 total_writes() const noexcept { return total_writes_; }
  [[nodiscard]] u64 total_reads() const noexcept { return total_reads_; }
  [[nodiscard]] u64 refused_writes() const noexcept { return refused_writes_; }
  [[nodiscard]] std::size_t max_occupancy() const noexcept {
    return max_occupancy_;
  }
  void reset_stats();

  /// Attach the observability bus (nullptr to detach): every push, pop
  /// and refused write is reported with the FIFO occupancy after the
  /// operation, timestamped with the bus's simulated-time cursor.
  void set_trace_bus(obs::TraceBus* bus) noexcept { trace_bus_ = bus; }

 private:
  void emit(obs::EventKind kind, Word data, bool control) const;

  std::size_t depth_;
  std::string name_;
  std::deque<FslEntry> fifo_;
  u64 total_writes_ = 0;
  u64 total_reads_ = 0;
  u64 refused_writes_ = 0;
  std::size_t max_occupancy_ = 0;
  obs::TraceBus* trace_bus_ = nullptr;
};

}  // namespace mbcosim::fsl
