// Cycle-accurate arithmetic-level model of a Xilinx Fast Simplex Link.
//
// FSLs are unidirectional FIFOs carrying a 32-bit data word plus one
// control bit per entry (paper Section III-B). The MicroBlaze-class
// processor owns up to 8 input and 8 output channels. The model exposes
// the FSL handshake flags by their paper names:
//   - `exists` (Out#_exists): data available on the read side;
//   - `full`   (In#_full): FIFO cannot accept another word.
// Blocking/non-blocking behaviour lives in the ISS / co-simulation engine
// (a blocking access stalls the processor until the flag allows progress);
// this class is the FIFO state machine itself.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "obs/trace_bus.hpp"

namespace mbcosim::ckpt {
class Writer;
class Reader;
}  // namespace mbcosim::ckpt

namespace mbcosim::fsl {

/// One FIFO entry: data word + control bit. The control bit is how the
/// paper's applications send configuration words (e.g. the CORDIC C0
/// constant and the matrix-B block elements) down the same channel as data.
struct FslEntry {
  Word data = 0;
  bool control = false;

  friend bool operator==(const FslEntry&, const FslEntry&) = default;
};

/// Armed fault-injection behaviour of one channel (src/fault's view of a
/// corrupted or failing FSL link). The channel holds these behind a
/// null-by-default pointer, so the un-faulted hot path pays exactly one
/// predictable branch per operation — the same contract as the trace
/// bus — and statistics stay bit-identical when nothing is armed.
struct FslFaultControls {
  /// One-shot transformation of a single word passing through the FIFO,
  /// applied to the `countdown`-th try_write after arming (0 = the next
  /// one). Models a transient upset of the link while the word is in
  /// flight.
  enum class Stream : u8 {
    kNone,       ///< no stream fault
    kCorrupt,    ///< XOR the data word with `mask`
    kDrop,       ///< accept the handshake but lose the word
    kDuplicate,  ///< enqueue the word twice (second copy only if room)
    kFlipControl ///< invert the control bit
  };
  Stream stream = Stream::kNone;
  u64 countdown = 0;  ///< writes to let through before the fault fires
  Word mask = 0;      ///< XOR mask for kCorrupt
  bool fired = false; ///< set once the one-shot stream fault has hit

  /// Persistent handshake-flag faults (stuck-at upsets in the FIFO
  /// status logic). Stuck-full refuses every write; stuck-empty hides
  /// every queued word from the reader. Both typically hang the system
  /// — which is exactly the failure class they exist to provoke.
  bool stuck_full = false;
  bool stuck_empty = false;
};

class FslChannel {
 public:
  /// Default FIFO depth matches the Xilinx FSL core default of 16 entries.
  static constexpr std::size_t kDefaultDepth = 16;

  explicit FslChannel(std::size_t depth = kDefaultDepth,
                      std::string name = "fsl");

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t occupancy() const noexcept { return fifo_.size(); }

  /// In#_full flag: true when a write would be refused.
  [[nodiscard]] bool full() const noexcept {
    return fifo_.size() >= depth_ || (fault_ != nullptr && fault_->stuck_full);
  }
  /// Out#_exists flag: true when a read can occur.
  [[nodiscard]] bool exists() const noexcept {
    return !fifo_.empty() && (fault_ == nullptr || !fault_->stuck_empty);
  }

  /// Master-side write. Returns false (and drops nothing) when full.
  bool try_write(Word data, bool control);

  /// Slave-side read. Empty optional when no data exists.
  std::optional<FslEntry> try_read();

  /// Inspect the head without consuming it.
  [[nodiscard]] std::optional<FslEntry> peek() const;

  void clear();

  // Occupancy statistics, used by the co-simulation engine's reports and
  // by the data-set sizing logic the paper describes in Section IV-A ("the
  // size of each set of data is selected carefully so that the results
  // would not overflow the FIFOs").
  [[nodiscard]] u64 total_writes() const noexcept { return total_writes_; }
  [[nodiscard]] u64 total_reads() const noexcept { return total_reads_; }
  [[nodiscard]] u64 refused_writes() const noexcept { return refused_writes_; }
  [[nodiscard]] std::size_t max_occupancy() const noexcept {
    return max_occupancy_;
  }
  void reset_stats();

  /// Attach the observability bus (nullptr to detach): every push, pop
  /// and refused write is reported with the FIFO occupancy after the
  /// operation, timestamped with the bus's simulated-time cursor.
  void set_trace_bus(obs::TraceBus* bus) noexcept { trace_bus_ = bus; }

  // -- fault injection (src/fault) -------------------------------------
  /// Arm fault behaviour on this channel (replaces any previous arming).
  void arm_fault(const FslFaultControls& controls) {
    fault_ = std::make_unique<FslFaultControls>(controls);
  }
  /// Return the channel to fault-free operation.
  void clear_fault() noexcept { fault_.reset(); }
  /// Armed controls, or nullptr when the channel is fault-free.
  [[nodiscard]] const FslFaultControls* fault() const noexcept {
    return fault_.get();
  }

  /// Mutate the queued entry at `index` in place (0 = head): XOR the
  /// data word with `mask`, optionally flipping the control bit. Models
  /// an SEU in the FIFO BRAM itself. Returns false when no such entry
  /// is queued (the fault lands on an empty slot and is masked).
  bool corrupt_entry(std::size_t index, Word mask, bool flip_control);

  /// Checkpoint the FIFO contents, statistics and any armed fault
  /// controls (depth and name are structural). load_state returns false
  /// when the snapshot's occupancy exceeds this channel's depth.
  void save_state(ckpt::Writer& writer) const;
  [[nodiscard]] bool load_state(ckpt::Reader& reader);

 private:
  void emit(obs::EventKind kind, Word data, bool control) const;

  std::size_t depth_;
  std::string name_;
  std::deque<FslEntry> fifo_;
  u64 total_writes_ = 0;
  u64 total_reads_ = 0;
  u64 refused_writes_ = 0;
  std::size_t max_occupancy_ = 0;
  obs::TraceBus* trace_bus_ = nullptr;
  std::unique_ptr<FslFaultControls> fault_;  ///< null = fault-free
};

}  // namespace mbcosim::fsl
