#include "fsl/fsl_channel.hpp"

#include <algorithm>
#include <utility>

#include "ckpt/ckpt.hpp"
#include "common/status.hpp"

namespace mbcosim::fsl {

FslChannel::FslChannel(std::size_t depth, std::string name)
    : depth_(depth), name_(std::move(name)) {
  if (depth_ == 0) {
    throw SimError("FslChannel '" + name_ + "': depth must be nonzero");
  }
}

void FslChannel::emit(obs::EventKind kind, Word data, bool control) const {
  obs::TraceEvent event;
  event.kind = kind;
  event.cycle = trace_bus_->time();
  event.channel = name_.c_str();
  event.occupancy = static_cast<u32>(fifo_.size());
  event.depth = static_cast<u32>(depth_);
  event.data = data;
  event.control = control;
  trace_bus_->emit(event);
}

bool FslChannel::try_write(Word data, bool control) {
  if (full()) {
    ++refused_writes_;
    if (trace_bus_ != nullptr && trace_bus_->enabled()) {
      emit(obs::EventKind::kFslRefused, data, control);
    }
    return false;
  }
  bool duplicate = false;
  if (fault_ != nullptr && fault_->stream != FslFaultControls::Stream::kNone &&
      !fault_->fired) [[unlikely]] {
    if (fault_->countdown == 0) {
      fault_->fired = true;
      switch (fault_->stream) {
        case FslFaultControls::Stream::kCorrupt:
          data ^= fault_->mask;
          break;
        case FslFaultControls::Stream::kFlipControl:
          control = !control;
          break;
        case FslFaultControls::Stream::kDrop:
          // The handshake succeeds but the word never lands in the FIFO
          // — the master has no way to notice the loss.
          ++total_writes_;
          return true;
        case FslFaultControls::Stream::kDuplicate:
          duplicate = true;
          break;
        case FslFaultControls::Stream::kNone:
          break;
      }
    } else {
      --fault_->countdown;
    }
  }
  fifo_.push_back(FslEntry{data, control});
  ++total_writes_;
  if (duplicate && fifo_.size() < depth_) {
    // The duplicated copy occupies a real FIFO slot but was never
    // written by the master, so it does not count as a write.
    fifo_.push_back(FslEntry{data, control});
  }
  max_occupancy_ = std::max(max_occupancy_, fifo_.size());
  if (trace_bus_ != nullptr && trace_bus_->enabled()) {
    emit(obs::EventKind::kFslPush, data, control);
  }
  return true;
}

std::optional<FslEntry> FslChannel::try_read() {
  // Stuck-empty must hide queued words from every reader, not only the
  // ones polite enough to consult exists() first.
  if (!exists()) return std::nullopt;
  FslEntry entry = fifo_.front();
  fifo_.pop_front();
  ++total_reads_;
  if (trace_bus_ != nullptr && trace_bus_->enabled()) {
    emit(obs::EventKind::kFslPop, entry.data, entry.control);
  }
  return entry;
}

std::optional<FslEntry> FslChannel::peek() const {
  if (!exists()) return std::nullopt;
  return fifo_.front();
}

void FslChannel::clear() { fifo_.clear(); }

bool FslChannel::corrupt_entry(std::size_t index, Word mask,
                               bool flip_control) {
  if (index >= fifo_.size()) return false;
  FslEntry& entry = fifo_[index];
  entry.data ^= mask;
  if (flip_control) entry.control = !entry.control;
  return true;
}

void FslChannel::reset_stats() {
  total_writes_ = 0;
  total_reads_ = 0;
  refused_writes_ = 0;
  max_occupancy_ = fifo_.size();
}

void FslChannel::save_state(ckpt::Writer& writer) const {
  writer.write_u64(fifo_.size());
  for (const FslEntry& entry : fifo_) {
    writer.write_u32(entry.data);
    writer.write_bool(entry.control);
  }
  writer.write_u64(total_writes_);
  writer.write_u64(total_reads_);
  writer.write_u64(refused_writes_);
  writer.write_u64(max_occupancy_);
  writer.write_bool(fault_ != nullptr);
  if (fault_ != nullptr) {
    writer.write_u8(static_cast<u8>(fault_->stream));
    writer.write_u64(fault_->countdown);
    writer.write_u32(fault_->mask);
    writer.write_bool(fault_->fired);
    writer.write_bool(fault_->stuck_full);
    writer.write_bool(fault_->stuck_empty);
  }
}

bool FslChannel::load_state(ckpt::Reader& reader) {
  const u64 occupancy = reader.read_u64();
  if (!reader.ok() || occupancy > depth_) return false;
  fifo_.clear();
  for (u64 i = 0; i < occupancy; ++i) {
    const Word data = reader.read_u32();
    const bool control = reader.read_bool();
    fifo_.push_back(FslEntry{data, control});
  }
  total_writes_ = reader.read_u64();
  total_reads_ = reader.read_u64();
  refused_writes_ = reader.read_u64();
  max_occupancy_ = static_cast<std::size_t>(reader.read_u64());
  if (reader.read_bool()) {
    FslFaultControls controls;
    const u8 stream = reader.read_u8();
    if (stream > static_cast<u8>(FslFaultControls::Stream::kFlipControl)) {
      return false;
    }
    controls.stream = static_cast<FslFaultControls::Stream>(stream);
    controls.countdown = reader.read_u64();
    controls.mask = reader.read_u32();
    controls.fired = reader.read_bool();
    controls.stuck_full = reader.read_bool();
    controls.stuck_empty = reader.read_bool();
    fault_ = std::make_unique<FslFaultControls>(controls);
  } else {
    fault_.reset();
  }
  return reader.ok();
}

}  // namespace mbcosim::fsl
