#include "fsl/fsl_channel.hpp"

#include <algorithm>
#include <utility>

#include "common/status.hpp"

namespace mbcosim::fsl {

FslChannel::FslChannel(std::size_t depth, std::string name)
    : depth_(depth), name_(std::move(name)) {
  if (depth_ == 0) {
    throw SimError("FslChannel '" + name_ + "': depth must be nonzero");
  }
}

void FslChannel::emit(obs::EventKind kind, Word data, bool control) const {
  obs::TraceEvent event;
  event.kind = kind;
  event.cycle = trace_bus_->time();
  event.channel = name_.c_str();
  event.occupancy = static_cast<u32>(fifo_.size());
  event.depth = static_cast<u32>(depth_);
  event.data = data;
  event.control = control;
  trace_bus_->emit(event);
}

bool FslChannel::try_write(Word data, bool control) {
  if (full()) {
    ++refused_writes_;
    if (trace_bus_ != nullptr && trace_bus_->enabled()) {
      emit(obs::EventKind::kFslRefused, data, control);
    }
    return false;
  }
  fifo_.push_back(FslEntry{data, control});
  ++total_writes_;
  max_occupancy_ = std::max(max_occupancy_, fifo_.size());
  if (trace_bus_ != nullptr && trace_bus_->enabled()) {
    emit(obs::EventKind::kFslPush, data, control);
  }
  return true;
}

std::optional<FslEntry> FslChannel::try_read() {
  if (fifo_.empty()) return std::nullopt;
  FslEntry entry = fifo_.front();
  fifo_.pop_front();
  ++total_reads_;
  if (trace_bus_ != nullptr && trace_bus_->enabled()) {
    emit(obs::EventKind::kFslPop, entry.data, entry.control);
  }
  return entry;
}

std::optional<FslEntry> FslChannel::peek() const {
  if (fifo_.empty()) return std::nullopt;
  return fifo_.front();
}

void FslChannel::clear() { fifo_.clear(); }

void FslChannel::reset_stats() {
  total_writes_ = 0;
  total_reads_ = 0;
  refused_writes_ = 0;
  max_occupancy_ = fifo_.size();
}

}  // namespace mbcosim::fsl
