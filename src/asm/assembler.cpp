#include "asm/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bits.hpp"
#include "isa/isa.hpp"

namespace mbcosim::assembler {

namespace isa = mbcosim::isa;

namespace {

// ---------------------------------------------------------------------------
// Mnemonic templates
// ---------------------------------------------------------------------------

/// Operand shapes accepted by the parser.
enum class Shape {
  kRdRaRb,    // add r3, r4, r5
  kRdRaImm,   // addik r3, r4, 100   (imm may be a symbol)
  kRdRa,      // sra r3, r4
  kImm,       // imm 0x1234
  kBrTarget,  // bri <label|imm>   [brld: rd, target]
  kBccTarget, // beqi ra, <label|imm>
  kRaImm,     // rtsd r15, 8
  kGetFsl,    // get rd, rfslN
  kPutFsl,    // put ra, rfslN
  kMfs,       // mfs rd, rmsr
  kMts,       // mts rmsr, ra
  kNone,      // nop / halt
  kLi,        // li rd, imm32 | la rd, symbol
};

struct Template {
  isa::Instruction proto;  ///< op + flags pre-filled
  Shape shape = Shape::kNone;
};

/// Build the mnemonic table once. Covers every variant the disassembler
/// can emit, so disassemble() output re-assembles (round-trip tested).
const std::unordered_map<std::string, Template>& mnemonic_table() {
  static const auto* table = [] {
    auto* t = new std::unordered_map<std::string, Template>;
    auto add = [t](const std::string& name, isa::Op op, Shape shape,
                   auto... mods) {
      isa::Instruction proto;
      proto.op = op;
      (mods(proto), ...);
      (*t)[name] = Template{proto, shape};
    };
    auto imm_form = [](isa::Instruction& i) { i.imm_form = true; };

    struct RegImmPair {
      const char* reg;
      const char* imm;
      isa::Op op;
    };
    static constexpr RegImmPair kPairs[] = {
        {"add", "addi", isa::Op::kAdd},     {"rsub", "rsubi", isa::Op::kRsub},
        {"addc", "addic", isa::Op::kAddc},  {"rsubc", "rsubic", isa::Op::kRsubc},
        {"addk", "addik", isa::Op::kAddk},  {"rsubk", "rsubik", isa::Op::kRsubk},
        {"mul", "muli", isa::Op::kMul},     {"bsll", "bslli", isa::Op::kBsll},
        {"bsra", "bsrai", isa::Op::kBsra},  {"bsrl", "bsrli", isa::Op::kBsrl},
        {"or", "ori", isa::Op::kOr},        {"and", "andi", isa::Op::kAnd},
        {"xor", "xori", isa::Op::kXor},     {"andn", "andni", isa::Op::kAndn},
        {"lbu", "lbui", isa::Op::kLbu},     {"lhu", "lhui", isa::Op::kLhu},
        {"lw", "lwi", isa::Op::kLw},        {"sb", "sbi", isa::Op::kSb},
        {"sh", "shi", isa::Op::kSh},        {"sw", "swi", isa::Op::kSw},
    };
    for (const auto& pair : kPairs) {
      add(pair.reg, pair.op, Shape::kRdRaRb);
      add(pair.imm, pair.op, Shape::kRdRaImm, imm_form);
    }
    add("cmp", isa::Op::kCmp, Shape::kRdRaRb);
    add("cmpu", isa::Op::kCmpu, Shape::kRdRaRb);
    add("idiv", isa::Op::kIdiv, Shape::kRdRaRb);
    add("idivu", isa::Op::kIdivu, Shape::kRdRaRb);
    add("sra", isa::Op::kSra, Shape::kRdRa);
    add("src", isa::Op::kSrc, Shape::kRdRa);
    add("srl", isa::Op::kSrl, Shape::kRdRa);
    add("sext8", isa::Op::kSext8, Shape::kRdRa);
    add("sext16", isa::Op::kSext16, Shape::kRdRa);
    add("imm", isa::Op::kImm, Shape::kImm, imm_form);
    add("mfs", isa::Op::kMfs, Shape::kMfs);
    add("mts", isa::Op::kMts, Shape::kMts);
    add("rtsd", isa::Op::kRtsd, Shape::kRaImm,
        [](isa::Instruction& i) { i.delay_slot = true; i.imm_form = true; });

    // Unconditional branch family: [a]bsolute, [l]ink, [d]elay, [i]mm.
    for (int absolute = 0; absolute <= 1; ++absolute) {
      for (int link = 0; link <= 1; ++link) {
        for (int delay = 0; delay <= 1; ++delay) {
          for (int immf = 0; immf <= 1; ++immf) {
            std::string name = "br";
            if (absolute) name += "a";
            if (link) name += "l";
            if (immf && delay) {
              name += "id";
            } else {
              if (immf) name += "i";
              if (delay) name += "d";
            }
            add(name, isa::Op::kBr, Shape::kBrTarget,
                [=](isa::Instruction& i) {
                  i.absolute = absolute != 0;
                  i.link = link != 0;
                  i.delay_slot = delay != 0;
                  i.imm_form = immf != 0;
                });
          }
        }
      }
    }
    // Conditional branch family.
    static constexpr const char* kCondNames[] = {"eq", "ne", "lt",
                                                 "le", "gt", "ge"};
    for (unsigned c = 0; c < 6; ++c) {
      for (int immf = 0; immf <= 1; ++immf) {
        for (int delay = 0; delay <= 1; ++delay) {
          std::string name = std::string("b") + kCondNames[c];
          if (immf) name += "i";
          if (delay) name += "d";
          add(name, isa::Op::kBcc, Shape::kBccTarget,
              [=](isa::Instruction& i) {
                i.cond = static_cast<isa::Cond>(c);
                i.imm_form = immf != 0;
                i.delay_slot = delay != 0;
              });
        }
      }
    }
    // FSL family: [n]on-blocking, [c]ontrol.
    for (int nb = 0; nb <= 1; ++nb) {
      for (int ctrl = 0; ctrl <= 1; ++ctrl) {
        std::string prefix = std::string(nb ? "n" : "") + (ctrl ? "c" : "");
        add(prefix + "get", isa::Op::kGet, Shape::kGetFsl,
            [=](isa::Instruction& i) {
              i.fsl_nonblocking = nb != 0;
              i.fsl_control = ctrl != 0;
              i.imm_form = true;
            });
        add(prefix + "put", isa::Op::kPut, Shape::kPutFsl,
            [=](isa::Instruction& i) {
              i.fsl_nonblocking = nb != 0;
              i.fsl_control = ctrl != 0;
              i.imm_form = true;
            });
      }
    }
    // Custom-instruction slots (Nios-style ISA customization).
    for (unsigned slot = 0; slot < isa::kNumCustomSlots; ++slot) {
      add("cust" + std::to_string(slot), isa::Op::kCustom, Shape::kRdRaRb,
          [slot](isa::Instruction& i) {
            i.custom_slot = static_cast<u8>(slot);
          });
    }
    // Pseudo-instructions.
    add("nop", isa::Op::kOr, Shape::kNone);
    add("halt", isa::Op::kBr, Shape::kNone,
        [](isa::Instruction& i) { i.imm_form = true; });
    add("li", isa::Op::kAddk, Shape::kLi, imm_form);
    add("la", isa::Op::kAddk, Shape::kLi, imm_form);
    return t;
  }();
  return *table;
}

// ---------------------------------------------------------------------------
// Lexing helpers
// ---------------------------------------------------------------------------

std::string_view trim(std::string_view text) {
  const auto* begin = text.begin();
  const auto* end = text.end();
  while (begin != end && std::isspace(static_cast<unsigned char>(*begin))) {
    ++begin;
  }
  while (end != begin && std::isspace(static_cast<unsigned char>(end[-1]))) {
    --end;
  }
  return {begin, static_cast<size_t>(end - begin)};
}

std::string_view strip_comment(std::string_view line) {
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '#' || c == ';') return line.substr(0, i);
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      return line.substr(0, i);
    }
  }
  return line;
}

std::vector<std::string> split_operands(std::string_view text) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ',') {
      auto piece = trim(text.substr(start, i - start));
      if (!piece.empty()) out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::string lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::optional<u8> parse_register(std::string_view text) {
  const std::string name = lower(trim(text));
  if (name.size() < 2 || name[0] != 'r') return std::nullopt;
  unsigned value = 0;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return std::nullopt;
    value = value * 10 + unsigned(name[i] - '0');
    if (value >= isa::kNumRegisters) return std::nullopt;
  }
  return static_cast<u8>(value);
}

std::optional<u8> parse_fsl(std::string_view text) {
  const std::string name = lower(trim(text));
  if (name.rfind("rfsl", 0) != 0 || name.size() != 5) return std::nullopt;
  if (!std::isdigit(static_cast<unsigned char>(name[4]))) return std::nullopt;
  const unsigned id = unsigned(name[4] - '0');
  if (id >= isa::kNumFslChannels) return std::nullopt;
  return static_cast<u8>(id);
}

std::optional<i64> parse_integer(std::string_view text) {
  std::string s(trim(text));
  if (s.empty()) return std::nullopt;
  bool negative = false;
  size_t pos = 0;
  if (s[0] == '-' || s[0] == '+') {
    negative = s[0] == '-';
    pos = 1;
  }
  if (pos >= s.size()) return std::nullopt;
  int base = 10;
  if (s.size() - pos > 2 && s[pos] == '0' &&
      (s[pos + 1] == 'x' || s[pos + 1] == 'X')) {
    base = 16;
    pos += 2;
  }
  i64 value = 0;
  for (; pos < s.size(); ++pos) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(s[pos])));
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = 10 + (c - 'a');
    } else {
      return std::nullopt;
    }
    value = value * base + digit;
    if (value > (i64{1} << 40)) return std::nullopt;  // implausible for MB32
  }
  return negative ? -value : value;
}

bool is_symbol(std::string_view text) {
  if (text.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(text[0])) && text[0] != '_') {
    return false;
  }
  return std::all_of(text.begin(), text.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_';
  });
}

// ---------------------------------------------------------------------------
// Two-pass assembly
// ---------------------------------------------------------------------------

/// One parsed source statement awaiting pass-2 resolution.
struct Statement {
  int line = 0;
  Addr address = 0;
  Template tmpl;
  std::string mnemonic;
  std::vector<std::string> operands;
  bool is_word_directive = false;  ///< .word literal(s), one Statement each
  std::string word_expr;           ///< expression for .word
  int emitted_words = 1;
};

struct AsmContext {
  std::unordered_map<std::string, Addr> symbols;
  std::ostringstream error;
  bool failed = false;

  void fail(int line, const std::string& message) {
    if (failed) error << "\n";
    error << "line " << line << ": " << message;
    failed = true;
  }
};

std::optional<i64> resolve_value(const AsmContext& ctx,
                                 const std::string& text) {
  if (auto literal = parse_integer(text)) return literal;
  if (is_symbol(text)) {
    if (auto it = ctx.symbols.find(text); it != ctx.symbols.end()) {
      return static_cast<i64>(it->second);
    }
  }
  return std::nullopt;
}

/// Encode one statement in pass 2, appending words to `out`.
void emit_statement(AsmContext& ctx, const Statement& st,
                    std::vector<Word>& out) {
  using isa::Op;
  const auto& ops = st.operands;
  isa::Instruction in = st.tmpl.proto;
  auto need = [&](size_t count) {
    if (ops.size() != count) {
      ctx.fail(st.line, st.mnemonic + ": expected " + std::to_string(count) +
                            " operand(s), got " + std::to_string(ops.size()));
      return false;
    }
    return true;
  };
  auto reg_or_fail = [&](const std::string& text, u8& slot) {
    if (auto reg = parse_register(text)) {
      slot = *reg;
      return true;
    }
    ctx.fail(st.line, st.mnemonic + ": bad register '" + text + "'");
    return false;
  };
  auto value_or_fail = [&](const std::string& text, i64& slot) {
    if (auto value = resolve_value(ctx, text)) {
      slot = *value;
      return true;
    }
    ctx.fail(st.line, st.mnemonic + ": cannot resolve '" + text + "'");
    return false;
  };
  auto imm16_or_fail = [&](i64 value, i32& slot) {
    if (value < -32768 || value > 32767) {
      ctx.fail(st.line, st.mnemonic + ": value " + std::to_string(value) +
                            " does not fit in 16 bits (use li)");
      return false;
    }
    slot = static_cast<i32>(value);
    return true;
  };
  auto push = [&](const isa::Instruction& instruction) {
    try {
      out.push_back(isa::encode(instruction));
    } catch (const SimError& e) {
      ctx.fail(st.line, e.what());
      out.push_back(0);
    }
  };

  if (st.is_word_directive) {
    i64 value = 0;
    if (!value_or_fail(st.word_expr, value)) {
      out.push_back(0);
      return;
    }
    out.push_back(static_cast<Word>(static_cast<u64>(value) & 0xFFFFFFFFu));
    return;
  }

  switch (st.tmpl.shape) {
    case Shape::kRdRaRb: {
      if (!need(3)) return;
      if (!reg_or_fail(ops[0], in.rd) || !reg_or_fail(ops[1], in.ra) ||
          !reg_or_fail(ops[2], in.rb)) {
        return;
      }
      push(in);
      return;
    }
    case Shape::kRdRaImm: {
      if (!need(3)) return;
      i64 value = 0;
      if (!reg_or_fail(ops[0], in.rd) || !reg_or_fail(ops[1], in.ra) ||
          !value_or_fail(ops[2], value)) {
        return;
      }
      if ((in.op == Op::kBsll || in.op == Op::kBsra || in.op == Op::kBsrl)) {
        if (value < 0 || value > 31) {
          ctx.fail(st.line, st.mnemonic + ": shift amount out of [0, 31]");
          return;
        }
      }
      if (!imm16_or_fail(value, in.imm)) return;
      push(in);
      return;
    }
    case Shape::kRdRa: {
      if (!need(2)) return;
      if (!reg_or_fail(ops[0], in.rd) || !reg_or_fail(ops[1], in.ra)) return;
      push(in);
      return;
    }
    case Shape::kImm: {
      if (!need(1)) return;
      i64 value = 0;
      if (!value_or_fail(ops[0], value)) return;
      if (value < -32768 || value > 0xFFFF) {
        ctx.fail(st.line, "imm: prefix value out of 16-bit range");
        return;
      }
      in.imm = static_cast<i32>(sign_extend(static_cast<u32>(value), 16));
      push(in);
      return;
    }
    case Shape::kBrTarget: {
      const size_t expected = in.link ? 2 : 1;
      if (!need(expected)) return;
      size_t target_index = 0;
      if (in.link) {
        if (!reg_or_fail(ops[0], in.rd)) return;
        target_index = 1;
      }
      if (in.imm_form) {
        i64 value = 0;
        if (!value_or_fail(ops[target_index], value)) return;
        // Labels are absolute addresses; relative branches take the delta.
        if (!in.absolute && is_symbol(ops[target_index])) {
          value -= static_cast<i64>(st.address);
        }
        if (!imm16_or_fail(value, in.imm)) return;
      } else {
        if (!reg_or_fail(ops[target_index], in.rb)) return;
      }
      push(in);
      return;
    }
    case Shape::kBccTarget: {
      if (!need(2)) return;
      if (!reg_or_fail(ops[0], in.ra)) return;
      if (in.imm_form) {
        i64 value = 0;
        if (!value_or_fail(ops[1], value)) return;
        if (is_symbol(ops[1])) value -= static_cast<i64>(st.address);
        if (!imm16_or_fail(value, in.imm)) return;
      } else {
        if (!reg_or_fail(ops[1], in.rb)) return;
      }
      push(in);
      return;
    }
    case Shape::kRaImm: {
      if (!need(2)) return;
      i64 value = 0;
      if (!reg_or_fail(ops[0], in.ra) || !value_or_fail(ops[1], value)) return;
      if (!imm16_or_fail(value, in.imm)) return;
      push(in);
      return;
    }
    case Shape::kGetFsl:
    case Shape::kPutFsl: {
      if (!need(2)) return;
      u8* reg_slot = st.tmpl.shape == Shape::kGetFsl ? &in.rd : &in.ra;
      if (!reg_or_fail(ops[0], *reg_slot)) return;
      if (auto fsl = parse_fsl(ops[1])) {
        in.fsl_id = *fsl;
      } else {
        ctx.fail(st.line, st.mnemonic + ": bad FSL operand '" + ops[1] + "'");
        return;
      }
      push(in);
      return;
    }
    case Shape::kMfs: {
      if (!need(2)) return;
      if (!reg_or_fail(ops[0], in.rd)) return;
      const std::string sreg = lower(ops[1]);
      if (sreg == "rpc") {
        in.imm = 0;
      } else if (sreg == "rmsr") {
        in.imm = 1;
      } else {
        ctx.fail(st.line, "mfs: unknown special register '" + ops[1] + "'");
        return;
      }
      push(in);
      return;
    }
    case Shape::kMts: {
      if (!need(2)) return;
      const std::string sreg = lower(ops[0]);
      if (sreg != "rmsr") {
        ctx.fail(st.line, "mts: only rmsr is writable");
        return;
      }
      in.imm = 1;
      if (!reg_or_fail(ops[1], in.ra)) return;
      push(in);
      return;
    }
    case Shape::kNone: {
      if (!need(0)) return;
      if (st.mnemonic == "halt") {
        // bri 0: branch-to-self, which every simulator in the project
        // recognises as end-of-program.
        isa::Instruction br;
        br.op = Op::kBr;
        br.imm_form = true;
        br.imm = 0;
        push(br);
        return;
      }
      isa::Instruction nop;  // or r0, r0, r0
      nop.op = Op::kOr;
      push(nop);
      return;
    }
    case Shape::kLi: {
      if (!need(2)) return;
      i64 value = 0;
      u8 rd = 0;
      if (!reg_or_fail(ops[0], rd) || !value_or_fail(ops[1], value)) return;
      const u32 bits32 = static_cast<u32>(static_cast<u64>(value));
      isa::Instruction prefix;
      prefix.op = Op::kImm;
      prefix.imm_form = true;
      prefix.imm = static_cast<i32>(sign_extend(bits32 >> 16, 16));
      push(prefix);
      isa::Instruction low;
      low.op = Op::kAddk;
      low.imm_form = true;
      low.rd = rd;
      low.ra = 0;
      low.imm = static_cast<i32>(sign_extend(bits32 & 0xFFFFu, 16));
      push(low);
      return;
    }
  }
}

}  // namespace

Addr Program::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  if (it == symbols.end()) {
    throw SimError("Program: undefined symbol '" + name + "'");
  }
  return it->second;
}

Expected<Program> assemble(std::string_view source) {
  AsmContext ctx;
  std::vector<Statement> statements;
  Program program;
  Addr location = 0;
  bool origin_set = false;

  // ---- Pass 1: parse lines, lay out addresses, collect labels. ----
  int line_number = 0;
  size_t pos = 0;
  while (pos <= source.size()) {
    const size_t eol = std::min(source.find('\n', pos), source.size());
    std::string_view raw = source.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_number;
    std::string_view line = trim(strip_comment(raw));
    if (line.empty()) {
      if (eol == source.size()) break;
      continue;
    }

    // Leading labels (possibly several on one line).
    while (true) {
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos) break;
      const std::string label(trim(line.substr(0, colon)));
      if (!is_symbol(label)) {
        ctx.fail(line_number, "bad label '" + label + "'");
        break;
      }
      if (ctx.symbols.count(label) != 0) {
        ctx.fail(line_number, "duplicate symbol '" + label + "'");
      }
      ctx.symbols[label] = location;
      line = trim(line.substr(colon + 1));
      if (line.empty()) break;
    }
    if (line.empty()) {
      if (eol == source.size()) break;
      continue;
    }

    // Split mnemonic / operand text.
    const size_t space = line.find_first_of(" \t");
    const std::string head = lower(line.substr(0, space));
    const std::string_view rest =
        space == std::string_view::npos ? std::string_view{} : line.substr(space);
    auto operands = split_operands(rest);

    if (head[0] == '.') {
      if (head == ".org") {
        if (operands.size() != 1) {
          ctx.fail(line_number, ".org: expected one operand");
        } else if (auto value = parse_integer(operands[0]);
                   value && *value >= 0 && (*value % 4) == 0) {
          if (!statements.empty() || origin_set) {
            ctx.fail(line_number, ".org: only supported before any code");
          } else {
            location = static_cast<Addr>(*value);
            program.origin = location;
            origin_set = true;
          }
        } else {
          ctx.fail(line_number, ".org: operand must be a word-aligned address");
        }
      } else if (head == ".equ") {
        if (operands.size() != 2 || !is_symbol(operands[0])) {
          ctx.fail(line_number, ".equ: expected NAME, value");
        } else if (auto value = parse_integer(operands[1])) {
          if (ctx.symbols.count(operands[0]) != 0) {
            ctx.fail(line_number, "duplicate symbol '" + operands[0] + "'");
          }
          ctx.symbols[operands[0]] = static_cast<Addr>(*value);
        } else {
          ctx.fail(line_number, ".equ: bad value '" + operands[1] + "'");
        }
      } else if (head == ".word") {
        if (operands.empty()) {
          ctx.fail(line_number, ".word: expected at least one value");
        }
        for (const auto& expr : operands) {
          Statement st;
          st.line = line_number;
          st.address = location;
          st.is_word_directive = true;
          st.word_expr = expr;
          statements.push_back(st);
          location += 4;
        }
      } else if (head == ".space") {
        if (operands.size() != 1) {
          ctx.fail(line_number, ".space: expected byte count");
        } else if (auto value = parse_integer(operands[0]);
                   value && *value >= 0 && (*value % 4) == 0) {
          for (i64 i = 0; i < *value / 4; ++i) {
            Statement st;
            st.line = line_number;
            st.address = location;
            st.is_word_directive = true;
            st.word_expr = "0";
            statements.push_back(st);
            location += 4;
          }
        } else {
          ctx.fail(line_number, ".space: size must be a multiple of 4");
        }
      } else {
        ctx.fail(line_number, "unknown directive '" + head + "'");
      }
      if (eol == source.size()) break;
      continue;
    }

    const auto& table = mnemonic_table();
    auto it = table.find(head);
    if (it == table.end()) {
      ctx.fail(line_number, "unknown mnemonic '" + head + "'");
      if (eol == source.size()) break;
      continue;
    }
    Statement st;
    st.line = line_number;
    st.address = location;
    st.tmpl = it->second;
    st.mnemonic = head;
    st.operands = std::move(operands);
    st.emitted_words = it->second.shape == Shape::kLi ? 2 : 1;
    location += static_cast<Addr>(st.emitted_words) * 4;
    statements.push_back(std::move(st));
    if (eol == source.size()) break;
  }

  // ---- Pass 2: encode with all symbols known. ----
  program.words.reserve(statements.size());
  for (const auto& st : statements) {
    emit_statement(ctx, st, program.words);
  }
  program.symbols = ctx.symbols;

  if (ctx.failed) return Expected<Program>::failure(ctx.error.str());
  return program;
}

Program assemble_or_throw(std::string_view source) {
  auto result = assemble(source);
  if (!result.ok()) {
    throw SimError("assembly failed:\n" + result.error());
  }
  return std::move(result).value();
}

}  // namespace mbcosim::assembler
