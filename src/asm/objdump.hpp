// Program-image inspection: the mb-objdump analog the paper uses for
// rapid resource estimation ("we obtain the size of the software program
// using the mb-objdump tool and then calculate the number of BRAMs
// required to store the software program based on its size", §III-C).
#pragma once

#include <string>

#include "asm/program.hpp"

namespace mbcosim::assembler {

/// Size summary of an assembled image.
struct ObjdumpSummary {
  u32 size_bytes = 0;
  u32 size_words = 0;
  u32 instruction_words = 0;  ///< words that decode to a valid instruction
  u32 data_words = 0;         ///< words that do not decode (treated as data)
};

[[nodiscard]] ObjdumpSummary summarize(const Program& program);

/// Full disassembly listing: "address: word  mnemonic operands" per line.
[[nodiscard]] std::string listing(const Program& program);

/// Number of BRAM blocks needed to store the image, given the block
/// capacity in bytes (Virtex-II Pro block RAM: 18 Kbit => 2 KiB usable
/// data width configuration for 32-bit words).
[[nodiscard]] u32 brams_for_program(const Program& program,
                                    u32 bram_bytes = 2048);

}  // namespace mbcosim::assembler
