// Assembled program image: the mbcosim analog of the .ELF files produced
// by mb-gcc in the paper's flow (Section III-A). Images are loaded into
// the LMB BRAM of the ISS (or of the RTL baseline model).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace mbcosim::assembler {

struct Program {
  Addr origin = 0;              ///< load address of the first word
  std::vector<Word> words;      ///< code + data, word-addressed
  std::unordered_map<std::string, Addr> symbols;  ///< labels and .equ values

  [[nodiscard]] u32 size_bytes() const noexcept {
    return static_cast<u32>(words.size()) * 4u;
  }
  [[nodiscard]] Addr entry() const noexcept { return origin; }

  /// Address of a symbol; throws SimError if not defined.
  [[nodiscard]] Addr symbol(const std::string& name) const;
};

}  // namespace mbcosim::assembler
