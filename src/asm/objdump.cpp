#include "asm/objdump.hpp"

#include <iomanip>
#include <sstream>

#include "common/bits.hpp"
#include "isa/isa.hpp"

namespace mbcosim::assembler {

ObjdumpSummary summarize(const Program& program) {
  ObjdumpSummary summary;
  summary.size_words = static_cast<u32>(program.words.size());
  summary.size_bytes = summary.size_words * 4u;
  for (const Word word : program.words) {
    if (isa::decode(word).op != isa::Op::kIllegal) {
      ++summary.instruction_words;
    } else {
      ++summary.data_words;
    }
  }
  return summary;
}

std::string listing(const Program& program) {
  std::ostringstream os;
  Addr address = program.origin;
  // Invert the symbol table for label annotations.
  for (const Word word : program.words) {
    for (const auto& [name, value] : program.symbols) {
      if (value == address) os << name << ":\n";
    }
    os << "  0x" << std::hex << std::setw(8) << std::setfill('0') << address
       << ": 0x" << std::setw(8) << word << std::dec << std::setfill(' ')
       << "  " << isa::disassemble(word) << "\n";
    address += 4;
  }
  return os.str();
}

u32 brams_for_program(const Program& program, u32 bram_bytes) {
  if (bram_bytes == 0) return 0;
  const u32 bytes = program.size_bytes();
  return bytes == 0 ? 0u : ceil_div(bytes, bram_bytes);
}

}  // namespace mbcosim::assembler
