// Two-pass assembler for the MB32 ISA (the mb-gcc/mb-as analog in our
// co-simulation flow; software inputs to the environment are written in
// this assembly instead of C, see DESIGN.md substitution table).
//
// Syntax overview:
//   label:                     ; labels end with ':'
//   add   r3, r4, r5           # type-A
//   addik r3, r4, -100         # type-B (16-bit signed immediate)
//   beqid r3, loop             # branches take labels or numeric offsets
//   get   r5, rfsl0            # FSL access; n/c prefixes select variants
//   .org   0x0                 # set location counter (bytes, word-aligned)
//   .word  1, 2, 0xdeadbeef    # literal data words
//   .space 16                  # reserve zeroed bytes (word multiple)
//   .equ   SIZE, 64            # symbolic constant
// Pseudo-instructions:
//   nop                        # or r0, r0, r0
//   halt                       # bri 0 -- branch-to-self, ends simulation
//   li  rd, imm32              # imm + addik pair (always two words)
//   la  rd, symbol             # same, with a symbol value
// Comments start with '#', ';' or "//" and run to end of line.
#pragma once

#include <string_view>

#include "asm/program.hpp"
#include "common/status.hpp"

namespace mbcosim::assembler {

/// Assemble MB32 source text. Parse/semantic problems are reported through
/// the Expected error channel with "line N: ..." messages.
[[nodiscard]] Expected<Program> assemble(std::string_view source);

/// Convenience wrapper that throws SimError on failure; used by the
/// application libraries whose sources are compile-time constants.
[[nodiscard]] Program assemble_or_throw(std::string_view source);

}  // namespace mbcosim::assembler
