// FslBridge: the communication-interface half of the "MicroBlaze Simulink
// block" (paper Section III-A/III-B). Each simulated clock cycle it
// presents the FSL FIFO state to the hardware model through Gateway In
// blocks, and samples the hardware's handshake outputs:
//
//   processor -> hardware ("slave" side, the HW is the FSL slave):
//     FSL_S_Data / FSL_S_Control / FSL_S_Exists  driven into the model,
//     FSL_S_Read sampled from the model; a high Read pops the FIFO.
//   hardware -> processor ("master" side, the HW is the FSL master):
//     FSL_M_Full driven into the model,
//     FSL_M_Data / FSL_M_Control / FSL_M_Write sampled; a high Write
//     pushes into the FIFO. A push against a full FIFO is refused (and
//     counted): a correct master observes FSL_M_Full and re-presents the
//     word, so no data is lost -- the paper instead sizes the data sets
//     so results "would not overflow the FIFOs" (Section IV-A).
#pragma once

#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "fsl/fsl_hub.hpp"
#include "sysgen/blocks_basic.hpp"

namespace mbcosim::core {

/// Processor-to-hardware channel binding (hardware reads).
struct SlaveBinding {
  unsigned channel = 0;
  sysgen::GatewayIn* data = nullptr;     ///< FSL_S_Data (required)
  sysgen::GatewayIn* control = nullptr;  ///< FSL_S_Control (optional)
  sysgen::GatewayIn* exists = nullptr;   ///< FSL_S_Exists (required)
  sysgen::GatewayOut* read = nullptr;    ///< FSL_S_Read ack (required)
};

/// Hardware-to-processor channel binding (hardware writes).
struct MasterBinding {
  unsigned channel = 0;
  sysgen::GatewayOut* data = nullptr;    ///< FSL_M_Data (required)
  sysgen::GatewayOut* control = nullptr; ///< FSL_M_Control (optional)
  sysgen::GatewayOut* write = nullptr;   ///< FSL_M_Write (required)
  sysgen::GatewayIn* full = nullptr;     ///< FSL_M_Full (optional)
};

struct BridgeStats {
  u64 words_to_hw = 0;    ///< FIFO pops consumed by the hardware
  u64 words_from_hw = 0;  ///< FIFO pushes produced by the hardware
  u64 refused_writes = 0; ///< pushes refused because the FIFO was full
};

class FslBridge {
 public:
  explicit FslBridge(fsl::FslHub& hub) : hub_(hub) {}

  void bind_slave(const SlaveBinding& binding);
  void bind_master(const MasterBinding& binding);

  /// Drive the model's FSL-facing inputs from the FIFO state. Call
  /// immediately before Model::step().
  void pre_cycle();

  /// Sample the model's FSL-facing outputs and update the FIFOs. Call
  /// immediately after Model::step().
  void post_cycle();

  /// True when the FSL interface demands hardware simulation this cycle:
  /// pending input words, output backpressure, or output traffic on the
  /// previous stepped cycle. Used by the engine's quiescence skip (the
  /// paper's "simulation of these hardware designs is carried out
  /// whenever there is data coming from the processor").
  [[nodiscard]] bool interface_active() const;

  [[nodiscard]] const BridgeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] fsl::FslHub& hub() noexcept { return hub_; }

  /// Checkpoint the traffic counters and the quiescence write-tracking
  /// flag (bindings are structural; the hub is serialized by its owner).
  void save_state(ckpt::Writer& writer) const {
    writer.write_u64(stats_.words_to_hw);
    writer.write_u64(stats_.words_from_hw);
    writer.write_u64(stats_.refused_writes);
    writer.write_bool(wrote_last_cycle_);
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) {
    stats_.words_to_hw = reader.read_u64();
    stats_.words_from_hw = reader.read_u64();
    stats_.refused_writes = reader.read_u64();
    wrote_last_cycle_ = reader.read_bool();
    return reader.ok();
  }

 private:
  fsl::FslHub& hub_;
  std::vector<SlaveBinding> slaves_;
  std::vector<MasterBinding> masters_;
  BridgeStats stats_;
  bool wrote_last_cycle_ = false;
};

}  // namespace mbcosim::core
