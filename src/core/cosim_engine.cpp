#include "core/cosim_engine.hpp"

#include <cstdio>

#include "ckpt/ckpt.hpp"
#include "isa/isa.hpp"

namespace mbcosim::core {

std::string DeadlockDiagnosis::to_string() const {
  if (channel.empty()) {
    return "deadlock: processor blocked (no FSL access decodes at pc 0x" +
           [](Addr a) {
             char buffer[16];
             std::snprintf(buffer, sizeof buffer, "%08x", a);
             return std::string(buffer);
           }(pc) +
           ")";
  }
  char buffer[192];
  std::snprintf(buffer, sizeof buffer,
                "deadlock: blocking %s on %s (fsl %u) at pc 0x%08x, "
                "fifo %u/%u, blocked %llu cycles",
                is_get ? "get" : "put", channel.c_str(), channel_id, pc,
                occupancy, depth,
                static_cast<unsigned long long>(blocked_cycles));
  return buffer;
}

DeadlockDiagnosis diagnose_deadlock(const iss::Processor& cpu,
                                    const fsl::FslHub& hub,
                                    Cycle blocked_cycles) {
  DeadlockDiagnosis diagnosis;
  diagnosis.pc = cpu.pc();
  diagnosis.blocked_cycles = blocked_cycles;
  if (!cpu.memory().contains(cpu.pc(), 4)) return diagnosis;
  const isa::Instruction in = isa::decode(cpu.memory().read_word(cpu.pc()));
  if (in.op != isa::Op::kGet && in.op != isa::Op::kPut) return diagnosis;
  diagnosis.is_get = in.op == isa::Op::kGet;
  diagnosis.channel_id = in.fsl_id;
  const fsl::FslChannel& channel = diagnosis.is_get ? hub.from_hw(in.fsl_id)
                                                    : hub.to_hw(in.fsl_id);
  diagnosis.channel = channel.name();
  diagnosis.occupancy = static_cast<u32>(channel.occupancy());
  diagnosis.depth = static_cast<u32>(channel.depth());
  return diagnosis;
}

void CoSimEngine::reset(Addr pc) {
  cpu_.reset(pc);
  hardware_.reset();
  bridge_.hub().clear();
  hw_cycles_ = 0;
  idle_streak_ = 0;
  skipped_cycles_ = 0;
  last_deadlock_.reset();
}

void CoSimEngine::tick_hardware(Cycle cycles) {
  Cycle skipped_this_call = 0;
  for (Cycle i = 0; i < cycles; ++i) {
    if (quiescence_window_ > 0) {
      if (bridge_.interface_active()) {
        idle_streak_ = 0;
      } else if (++idle_streak_ > quiescence_window_) {
        // The peripheral has provably drained: fast-forward this cycle.
        ++skipped_cycles_;
        ++skipped_this_call;
        ++hw_cycles_;
        continue;
      }
    }
    if (trace_bus_ != nullptr) trace_bus_->set_time(hw_cycles_);
    bridge_.pre_cycle();
    hardware_.step();
    bridge_.post_cycle();
    ++hw_cycles_;
  }
  if (skipped_this_call != 0 && trace_bus_ != nullptr &&
      trace_bus_->enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kQuiesceSkip;
    event.cycle = hw_cycles_;
    event.skipped = skipped_this_call;
    trace_bus_->emit(event);
  }
}

iss::StepResult CoSimEngine::debug_step() {
  const iss::StepResult result = cpu_.step();
  tick_hardware(result.cycles);
  return result;
}

StopReason CoSimEngine::run(Cycle max_cycles) {
  Cycle blocked_streak = 0;
  u64 last_traffic = bridge_.stats().words_to_hw +
                     bridge_.stats().words_from_hw;
  while (!cpu_.halted() && cpu_.cycle() < max_cycles) {
    if (cpu_.fast_path_available()) {
      // Multi-cycle quantum: run the CPU ahead through code that cannot
      // touch the FSL interface, then advance the hardware model by the
      // same number of cycles. The two sides interact only through the
      // FIFOs, and the batch stops *before* any FSL access, so both
      // clocks agree at every FIFO handshake — the same cycle accuracy
      // as strict one-step alternation, at a fraction of the cost.
      const iss::BatchResult batch = cpu_.run_batch(max_cycles, true);
      if (batch.cycles != 0) {
        tick_hardware(batch.cycles);
        blocked_streak = 0;
        last_traffic = bridge_.stats().words_to_hw +
                       bridge_.stats().words_from_hw;
      }
      if (batch.stop == iss::BatchStop::kHalted) return StopReason::kHalted;
      if (batch.stop == iss::BatchStop::kIllegal) return StopReason::kIllegal;
      if (batch.stop == iss::BatchStop::kBudget) continue;  // loop exits
      // kFslPending (or kPrecise): the hardware is at cycle parity; the
      // next instruction takes the precise lock-step path below.
    }
    const iss::StepResult result = cpu_.step();
    // Keep the hardware clock in lock step with the processor clock.
    tick_hardware(result.cycles);
    switch (result.event) {
      case iss::Event::kHalted:
        return StopReason::kHalted;
      case iss::Event::kIllegal:
        return StopReason::kIllegal;
      case iss::Event::kFslStall: {
        const u64 traffic = bridge_.stats().words_to_hw +
                            bridge_.stats().words_from_hw;
        if (traffic == last_traffic) {
          if (++blocked_streak >= deadlock_threshold_) {
            last_deadlock_ =
                diagnose_deadlock(cpu_, bridge_.hub(), blocked_streak);
            if (trace_bus_ != nullptr && trace_bus_->enabled()) {
              obs::TraceEvent event;
              event.kind = obs::EventKind::kDeadlock;
              event.cycle = cpu_.cycle();
              event.cycles = blocked_streak;
              event.channel = last_deadlock_->channel.empty()
                                  ? nullptr
                                  : last_deadlock_->channel.c_str();
              trace_bus_->emit(event);
            }
            return StopReason::kDeadlock;
          }
        } else {
          blocked_streak = 0;
          last_traffic = traffic;
        }
        break;
      }
      case iss::Event::kRetired:
        blocked_streak = 0;
        last_traffic = bridge_.stats().words_to_hw +
                       bridge_.stats().words_from_hw;
        break;
    }
  }
  return cpu_.halted() ? StopReason::kHalted : StopReason::kCycleLimit;
}

void CoSimEngine::save_state(ckpt::Writer& writer) const {
  writer.write_u64(hw_cycles_);
  writer.write_u64(idle_streak_);
  writer.write_u64(skipped_cycles_);
  bridge_.save_state(writer);
}

bool CoSimEngine::load_state(ckpt::Reader& reader) {
  hw_cycles_ = reader.read_u64();
  idle_streak_ = reader.read_u64();
  skipped_cycles_ = reader.read_u64();
  if (!bridge_.load_state(reader)) return false;
  last_deadlock_.reset();
  return reader.ok();
}

CoSimStats CoSimEngine::stats() const {
  CoSimStats stats;
  stats.cycles = cpu_.stats().cycles;
  stats.instructions = cpu_.stats().instructions;
  stats.fsl_stall_cycles = cpu_.stats().fsl_stall_cycles;
  stats.hw_cycles_stepped = hw_cycles_ - skipped_cycles_;
  stats.hw_cycles_skipped = skipped_cycles_;
  stats.bridge = bridge_.stats();
  return stats;
}

}  // namespace mbcosim::core
