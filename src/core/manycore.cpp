#include "core/manycore.hpp"

#include <algorithm>
#include <optional>

#include "ckpt/ckpt.hpp"
#include "common/thread_pool.hpp"

namespace mbcosim::core {

namespace {

/// Effectively-infinite per-core deadlock threshold: a core starving on
/// a cross-link looks exactly like a core starving on slow hardware,
/// and only the machine-level heuristic may call it a deadlock.
constexpr Cycle kNeverDeadlock = ~Cycle{0} >> 1;

}  // namespace

std::size_t ManyCoreEngine::add_core(std::string name, iss::Processor& cpu,
                                     CoSimEngine& engine, fsl::FslHub& hub) {
  engine.set_deadlock_threshold(kNeverDeadlock);
  Node node;
  node.name = std::move(name);
  node.cpu = &cpu;
  node.engine = &engine;
  node.hub = &hub;
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

Status ManyCoreEngine::link(std::size_t from_core, unsigned from_channel,
                            std::size_t to_core, unsigned to_channel) {
  if (from_core >= nodes_.size() || to_core >= nodes_.size()) {
    return Status::failure("ManyCoreEngine::link: core index out of range");
  }
  if (from_channel >= fsl::FslHub::kChannels ||
      to_channel >= fsl::FslHub::kChannels) {
    return Status::failure("ManyCoreEngine::link: channel id out of range");
  }
  CrossLink link;
  link.from_core = from_core;
  link.to_core = to_core;
  link.source = &nodes_[from_core].hub->to_hw(from_channel);
  link.sink = &nodes_[to_core].hub->from_hw(to_channel);
  links_.push_back(link);
  return {};
}

u64 ManyCoreEngine::transfer_links() {
  u64 moved = 0;
  for (const CrossLink& link : links_) {
    while (link.source->exists() && !link.sink->full()) {
      const std::optional<fsl::FslEntry> entry = link.source->try_read();
      if (!entry) break;
      link.sink->try_write(entry->data, entry->control);
      ++moved;
    }
  }
  link_words_ += moved;
  return moved;
}

std::size_t ManyCoreEngine::run_round(Cycle target, ThreadPool* pool) {
  // Each job touches only its own node: the core's processor, hardware
  // model, FIFOs and trace bus are private until the barrier below.
  auto advance = [this, target](std::size_t index) {
    Node& node = nodes_[index];
    node.last = node.engine->run(target);
    if (node.last == StopReason::kHalted) node.finished = true;
  };
  if (pool == nullptr) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i].finished) advance(i);
    }
  } else {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i].finished) pool->submit([advance, i] { advance(i); });
    }
    pool->wait_idle();
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].finished && nodes_[i].last == StopReason::kIllegal) {
      return i;
    }
  }
  return nodes_.size();
}

void ManyCoreEngine::note_halt(std::size_t index) {
  const Cycle cycle = nodes_[index].cpu->cycle();
  if (last_halted_core_ == MachineStop::kNoCore ||
      cycle >= last_halt_cycle_) {
    last_halted_core_ = index;
    last_halt_cycle_ = cycle;
  }
}

MachineStop ManyCoreEngine::run(Cycle max_cycles) {
  if (nodes_.empty()) return {StopReason::kHalted, MachineStop::kNoCore};

  // Resume from wherever the clocks are (run() composes with
  // debug_step()); unfinished cores are at most one round apart.
  Cycle global = 0;
  std::size_t live = 0;
  for (const Node& node : nodes_) {
    if (node.finished) continue;
    ++live;
    global = std::max(global, node.cpu->cycle());
  }
  if (live == 0) return {StopReason::kHalted, last_halted_core_};

  unsigned workers = workers_ == 0 ? std::thread::hardware_concurrency()
                                   : workers_;
  workers = std::max(workers, 1u);
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, nodes_.size()));
  // The pool persists across rounds; worker count never affects results
  // (see the file comment), only host wall-clock.
  std::optional<ThreadPool> pool;
  if (workers > 1 && live > 1) pool.emplace(workers);

  Cycle stalled = 0;
  // Halt attribution: run_round flips finished flags on worker threads,
  // so which cores halted this round is recovered here by diffing the
  // flags across the barrier — note_halt runs orchestrator-side only.
  std::vector<char> was_finished(nodes_.size(), 0);
  while (global < max_cycles) {
    const Cycle target = std::min(global + quantum_, max_cycles);
    u64 instructions_before = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      instructions_before += nodes_[i].cpu->stats().instructions;
      was_finished[i] = nodes_[i].finished ? 1 : 0;
    }

    const std::size_t trapped =
        run_round(target, pool.has_value() ? &*pool : nullptr);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (was_finished[i] == 0 && nodes_[i].finished) note_halt(i);
    }
    if (trapped < nodes_.size()) return {StopReason::kIllegal, trapped};

    const u64 moved = transfer_links();
    u64 instructions_after = 0;
    live = 0;
    for (const Node& node : nodes_) {
      instructions_after += node.cpu->stats().instructions;
      if (!node.finished) ++live;
    }
    if (live == 0) return {StopReason::kHalted, last_halted_core_};

    if (moved == 0 && instructions_after == instructions_before) {
      stalled += target - global;
      if (stalled >= deadlock_threshold_) {
        // Blame the first core parked on a decodable FSL access; fall
        // back to the first live core when none decodes (e.g. a custom
        // busy-wait) so the diagnosis always names a core.
        std::size_t fallback = nodes_.size();
        deadlock_core_ = nodes_.size();
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          if (nodes_[i].finished) continue;
          if (fallback == nodes_.size()) fallback = i;
          DeadlockDiagnosis diagnosis =
              diagnose_deadlock(*nodes_[i].cpu, *nodes_[i].hub, stalled);
          if (!diagnosis.channel.empty()) {
            deadlock_core_ = i;
            last_deadlock_ = std::move(diagnosis);
            break;
          }
        }
        if (deadlock_core_ == nodes_.size()) {
          deadlock_core_ = fallback;
          last_deadlock_ = diagnose_deadlock(*nodes_[fallback].cpu,
                                             *nodes_[fallback].hub, stalled);
        }
        return {StopReason::kDeadlock, deadlock_core_};
      }
    } else {
      stalled = 0;
    }
    global = target;
  }
  return {StopReason::kCycleLimit, MachineStop::kNoCore};
}

iss::StepResult ManyCoreEngine::debug_step(std::size_t index) {
  Node& node = nodes_[index];
  // A halted core is terminal: stepping it again must not re-execute
  // the halt instruction (which would skew its cycle/instruction
  // counters and could drag other cores forward). Report the halt.
  if (node.finished) return {iss::Event::kHalted, 0};
  const iss::StepResult result = node.engine->debug_step();
  if (result.event == iss::Event::kHalted) {
    node.finished = true;
    note_halt(index);
  }
  // A one-instruction round: every other live core catches up to the
  // stepped core's clock, then the links transfer as usual, so single
  // stepping from gdb observes the same machine a free run would.
  const Cycle target = node.cpu->cycle();
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    if (j == index || nodes_[j].finished) continue;
    nodes_[j].last = nodes_[j].engine->run(target);
    if (nodes_[j].last == StopReason::kHalted) {
      nodes_[j].finished = true;
      note_halt(j);
    }
  }
  transfer_links();
  return result;
}

void ManyCoreEngine::save_state(ckpt::Writer& writer) const {
  writer.write_u64(nodes_.size());
  for (const Node& node : nodes_) {
    writer.write_bool(node.finished);
    writer.write_u8(static_cast<u8>(node.last));
  }
  writer.write_u64(link_words_);
  writer.write_u64(static_cast<u64>(last_halted_core_));
  writer.write_u64(last_halt_cycle_);
}

bool ManyCoreEngine::load_state(ckpt::Reader& reader) {
  if (reader.read_u64() != nodes_.size()) return false;
  for (Node& node : nodes_) {
    node.finished = reader.read_bool();
    const u8 last = reader.read_u8();
    if (last > static_cast<u8>(StopReason::kDeadlock)) return false;
    node.last = static_cast<StopReason>(last);
  }
  link_words_ = reader.read_u64();
  last_halted_core_ = static_cast<std::size_t>(reader.read_u64());
  last_halt_cycle_ = reader.read_u64();
  last_deadlock_.reset();
  deadlock_core_ = 0;
  return reader.ok();
}

CoSimStats ManyCoreEngine::aggregate_stats() const {
  CoSimStats total;
  for (const Node& node : nodes_) {
    const CoSimStats stats = node.engine->stats();
    total.cycles = std::max(total.cycles, stats.cycles);
    total.instructions += stats.instructions;
    total.fsl_stall_cycles += stats.fsl_stall_cycles;
    total.hw_cycles_stepped += stats.hw_cycles_stepped;
    total.hw_cycles_skipped += stats.hw_cycles_skipped;
    total.bridge.words_to_hw += stats.bridge.words_to_hw;
    total.bridge.words_from_hw += stats.bridge.words_from_hw;
    total.bridge.refused_writes += stats.bridge.refused_writes;
  }
  return total;
}

}  // namespace mbcosim::core
