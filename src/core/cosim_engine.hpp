// CoSimEngine: the paper's primary contribution — a high-level
// cycle-accurate hardware/software co-simulation loop (Figure 1/2).
//
// Three simulated components advance in lock step on the single system
// clock:
//   - the software execution platform: the cycle-accurate ISS
//     (iss::Processor, the Xilinx MicroBlaze-simulator analog);
//   - the customized hardware peripherals: a sysgen::Model
//     (the System Generator / Simulink analog);
//   - the communication interface: fsl::FslHub FIFOs bridged into the
//     model by core::FslBridge (the MicroBlaze-Simulink-block analog).
//
// Every processor step reports how many clock cycles it consumed; the
// engine then advances the hardware model by exactly that many cycles, so
// at every FIFO access both sides agree on the cycle count — this is the
// paper's definition of high-level cycle accuracy (Section I). A
// processor blocked on a full/empty FSL burns one cycle per step until
// the hardware makes progress (Section III-B's stalling semantics).
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"
#include "core/fsl_bridge.hpp"
#include "fsl/fsl_hub.hpp"
#include "iss/processor.hpp"
#include "obs/trace_bus.hpp"
#include "sysgen/model.hpp"

namespace mbcosim::core {

struct CoSimStats {
  Cycle cycles = 0;            ///< total simulated clock cycles
  u64 instructions = 0;        ///< instructions retired by the processor
  Cycle fsl_stall_cycles = 0;  ///< cycles the processor spent blocked
  Cycle hw_cycles_stepped = 0; ///< hardware cycles actually evaluated
  Cycle hw_cycles_skipped = 0; ///< quiescent cycles fast-forwarded
  BridgeStats bridge;          ///< FIFO traffic
};

enum class StopReason : u8 {
  kHalted,      ///< software reached its end (branch-to-self)
  kCycleLimit,  ///< budget exhausted
  kIllegal,     ///< architectural error in the software
  kDeadlock,    ///< processor blocked on FSL with no hardware progress
};

/// Stable lower-case name of a stop reason (reports, mbcsim output).
[[nodiscard]] constexpr const char* stop_reason_name(
    StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kHalted: return "halted";
    case StopReason::kCycleLimit: return "cycle_limit";
    case StopReason::kIllegal: return "illegal";
    case StopReason::kDeadlock: return "deadlock";
  }
  return "unknown";
}

/// Structured description of *what* was blocked when the deadlock
/// heuristic fired: the FSL access the processor was spinning on, which
/// channel it targeted, and the FIFO state that refused it. Built by
/// diagnose_deadlock() below; surfaced via CoSimEngine /
/// sim::SimSystem::deadlock_diagnosis() and printed by mbcsim.
struct DeadlockDiagnosis {
  std::string channel;       ///< FIFO name (e.g. "hw_to_mb0")
  unsigned channel_id = 0;   ///< FSL link number
  bool is_get = false;       ///< true: blocking get (read); false: put
  Addr pc = 0;               ///< PC of the blocked instruction
  u32 occupancy = 0;         ///< FIFO occupancy at diagnosis time
  u32 depth = 0;
  Cycle blocked_cycles = 0;  ///< length of the blocked streak

  /// One-line human-readable form ("deadlock: blocking get on ...").
  [[nodiscard]] std::string to_string() const;
};

/// Decode the instruction the blocked processor is parked on and
/// describe the deadlock. Valid when the processor's last event was
/// kFslStall (PC unchanged, pointing at the blocking get/put); if the
/// PC does not hold an FSL access the diagnosis is returned with
/// channel empty (diagnosable == channel not empty).
[[nodiscard]] DeadlockDiagnosis diagnose_deadlock(const iss::Processor& cpu,
                                                  const fsl::FslHub& hub,
                                                  Cycle blocked_cycles);

class CoSimEngine {
 public:
  CoSimEngine(iss::Processor& cpu, sysgen::Model& hardware, fsl::FslHub& hub)
      : cpu_(cpu), hardware_(hardware), bridge_(hub) {}

  [[nodiscard]] FslBridge& bridge() noexcept { return bridge_; }
  [[nodiscard]] iss::Processor& cpu() noexcept { return cpu_; }
  [[nodiscard]] sysgen::Model& hardware() noexcept { return hardware_; }

  /// Reset processor (to `pc`), hardware model and FIFOs.
  void reset(Addr pc = 0);

  /// Run the co-simulation until the software halts, an error occurs, or
  /// `max_cycles` simulated cycles have elapsed. When the processor's
  /// batched fast path is available (predecode or dbt tier, no trace
  /// sinks), the CPU runs in multi-cycle quanta that stop before every
  /// FSL access and the hardware catches up in one tick_hardware call
  /// per quantum —
  /// cycle counts and statistics are identical to one-step alternation
  /// because the two sides only interact through the FIFOs. With trace
  /// sinks attached the engine keeps strict one-step alternation, so
  /// event logs (and their timestamps) are byte-identical to earlier
  /// releases.
  StopReason run(Cycle max_cycles = ~Cycle{0} >> 1);

  /// Advance the hardware (and bridge) alone by `cycles` clock cycles —
  /// used when the software side is idle and by hardware-only benches.
  void tick_hardware(Cycle cycles);

  /// One precise lock-step unit for a debugger: step the processor once
  /// and bring the hardware model to cycle parity, exactly as run()'s
  /// precise path does. Interleaving debug_step() with run() keeps every
  /// statistic identical to an uninterrupted run over the same cycles.
  iss::StepResult debug_step();

  [[nodiscard]] CoSimStats stats() const;

  /// Diagnosis of the most recent StopReason::kDeadlock from run();
  /// empty until a deadlock has been detected. Cleared by reset().
  [[nodiscard]] const std::optional<DeadlockDiagnosis>& deadlock_diagnosis()
      const noexcept {
    return last_deadlock_;
  }

  /// Deadlock heuristic: how many consecutive blocked processor cycles
  /// with zero FIFO movement before run() gives up.
  void set_deadlock_threshold(Cycle threshold) noexcept {
    deadlock_threshold_ = threshold;
  }

  /// Enable the quiescence optimization the paper describes in Section
  /// III-A ("whenever there is data coming from the processor,
  /// simulation of these hardware designs is carried out"): once the FSL
  /// interface has been inactive for `drain_cycles` consecutive cycles —
  /// an upper bound on the peripheral's pipeline drain time, supplied by
  /// the application — further idle cycles are fast-forwarded without
  /// evaluating the hardware model. Cycle counts are unaffected: a
  /// drained synchronous pipeline with no input is a fixed point of the
  /// simulation. 0 disables the optimization (every cycle is stepped).
  void set_quiescence_window(Cycle drain_cycles) noexcept {
    quiescence_window_ = drain_cycles;
  }

  /// Attach the observability bus (nullptr to detach). The engine
  /// reports quiescence fast-forward hops and deadlock detection, and
  /// keeps the bus's time cursor on the hardware clock while ticking
  /// the model (so bridge-driven FIFO events carry hardware-cycle
  /// timestamps).
  void set_trace_bus(obs::TraceBus* bus) noexcept { trace_bus_ = bus; }

  /// Checkpoint the engine's own counters and the bridge (the CPU,
  /// hardware model and hub are serialized by the owner — see DESIGN.md
  /// §11). The deadlock diagnosis is diagnostic output, not state: it is
  /// cleared on restore. Deadlock/quiescence thresholds are
  /// configuration and are not captured.
  void save_state(ckpt::Writer& writer) const;
  [[nodiscard]] bool load_state(ckpt::Reader& reader);

 private:
  iss::Processor& cpu_;
  sysgen::Model& hardware_;
  FslBridge bridge_;
  Cycle hw_cycles_ = 0;
  Cycle deadlock_threshold_ = 100'000;
  Cycle quiescence_window_ = 0;
  Cycle idle_streak_ = 0;
  Cycle skipped_cycles_ = 0;
  obs::TraceBus* trace_bus_ = nullptr;
  std::optional<DeadlockDiagnosis> last_deadlock_;
};

}  // namespace mbcosim::core
