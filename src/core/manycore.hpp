// ManyCoreEngine: deterministic parallel co-simulation of N soft
// processors, each with its own hardware model and FSL hub, cross-wired
// by quantum-synchronized FSL links. This generalizes CoSimEngine from
// the paper's single MicroBlaze (Figure 3) to a farm of them — the
// multi-processor variant the paper sketches for larger System
// Generator designs — while keeping the property that makes the rest of
// the repo trustworthy: the simulation result is a pure function of the
// machine description, independent of host thread count or scheduling.
//
// Execution model (conservative quantum synchronization):
//   - Time advances in rounds. In each round every unfinished core runs
//     alone — its processor, its peripherals, its private FIFOs — up to
//     the shared target `global_cycle + quantum`, possibly on a worker
//     thread. Cores share no mutable state during a round.
//   - At the round barrier the orchestrator thread moves words across
//     the declared cross-core links in declaration order, bounded by
//     destination FIFO space. A word written in round R is thus visible
//     to its reader in round R+1 — the quantum is the link latency.
//   - A core blocked on an empty (or full) cross-linked FIFO burns
//     stall cycles to the quantum boundary exactly like a single-core
//     processor blocked on slow hardware, so cycle accounting never
//     depends on what the other cores happened to be doing.
//
// Determinism: rounds are sequential; within a round each core touches
// only core-local state; barrier transfers run on one thread in fixed
// order. Worker count changes which host thread executes a core's
// quantum — never the order of operations any simulated component
// observes. The machine determinism test asserts byte-identical stats
// and traces at 1, 2 and N workers (tests/machine).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/cosim_engine.hpp"
#include "fsl/fsl_channel.hpp"
#include "fsl/fsl_hub.hpp"
#include "iss/processor.hpp"

namespace mbcosim {
class ThreadPool;  // common/thread_pool.hpp
}

namespace mbcosim::ckpt {
class Writer;
class Reader;
}  // namespace mbcosim::ckpt

namespace mbcosim::core {

/// How a machine-level run ended. `core` identifies the culprit for
/// kIllegal / kDeadlock, and for kHalted the last core to halt (ties at
/// the same cycle go to the highest index) — all indices into add_core
/// order. It is kNoCore for kCycleLimit and for a kHalted stop with no
/// observable halt (an empty machine).
struct MachineStop {
  /// Sentinel: no core is responsible for (or known for) this stop.
  static constexpr std::size_t kNoCore = static_cast<std::size_t>(-1);

  StopReason reason = StopReason::kCycleLimit;
  std::size_t core = kNoCore;
};

class ManyCoreEngine {
 public:
  explicit ManyCoreEngine(Cycle quantum = 64) : quantum_(quantum) {}

  /// Register a core. The processor/engine/hub are owned by the caller
  /// (sim::SimSystem keeps them in per-core state blocks) and must
  /// outlive the engine. Cores run in add order; `name` is used in
  /// diagnostics. The per-core engine's own deadlock heuristic is
  /// disabled — a core starving on a cross-link is not deadlocked until
  /// the *whole machine* stops making progress (see set_deadlock_...).
  std::size_t add_core(std::string name, iss::Processor& cpu,
                       CoSimEngine& engine, fsl::FslHub& hub);

  /// Cross-wire `from`'s put-channel to `to`'s get-channel. Channel
  /// validity and conflicts are checked by machine::MachineDesc; this
  /// rejects only out-of-range core indices / channel ids.
  Status link(std::size_t from_core, unsigned from_channel,
              std::size_t to_core, unsigned to_channel);

  /// Worker threads for the per-round core fan-out. 0 = one per host
  /// hardware thread; 1 = fully serial. Purely a host-performance knob:
  /// results are identical for every value.
  void set_workers(unsigned workers) noexcept { workers_ = workers; }

  /// Machine-level deadlock heuristic: after this many consecutive
  /// simulated cycles in which no core retired an instruction and no
  /// link moved a word, run() gives up (rounded up to whole quanta).
  void set_deadlock_threshold(Cycle cycles) noexcept {
    deadlock_threshold_ = cycles;
  }

  /// Run the machine until every core halts, any core traps, the
  /// machine deadlocks, or `max_cycles` is reached (per-core clock).
  MachineStop run(Cycle max_cycles);

  /// One debugger step of core `index`: step its processor once, bring
  /// every other live core to cycle parity, then transfer the links —
  /// a one-instruction-deep round, so interleaving debug_step with
  /// run() preserves all statistics exactly. Stepping a core that has
  /// already halted is a no-op reporting kHalted (zero cycles).
  iss::StepResult debug_step(std::size_t index);

  [[nodiscard]] std::size_t core_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const std::string& core_name(std::size_t index) const {
    return nodes_[index].name;
  }
  /// Per-core statistics, in add order.
  [[nodiscard]] CoSimStats core_stats(std::size_t index) const {
    return nodes_[index].engine->stats();
  }
  /// Machine totals: cycle count is the maximum per-core clock (the
  /// cores share one system clock); the other fields are sums.
  [[nodiscard]] CoSimStats aggregate_stats() const;
  /// Words moved across every cross-core link so far.
  [[nodiscard]] u64 link_words() const noexcept { return link_words_; }

  /// Diagnosis of the most recent machine deadlock (empty otherwise):
  /// the first blocked core's parked FSL access, channel and FIFO state.
  [[nodiscard]] const std::optional<DeadlockDiagnosis>& deadlock_diagnosis()
      const noexcept {
    return last_deadlock_;
  }
  /// Core index the deadlock diagnosis refers to.
  [[nodiscard]] std::size_t deadlock_core() const noexcept {
    return deadlock_core_;
  }

  [[nodiscard]] Cycle quantum() const noexcept { return quantum_; }

  /// Forget run progress — finished flags, link word counter, halt
  /// attribution, deadlock diagnosis. Call after resetting every core's
  /// engine (the caller owns them, so the reset loop lives there, in
  /// sim::SimSystem).
  void reset_progress() noexcept {
    for (Node& node : nodes_) {
      node.finished = false;
      node.last = StopReason::kCycleLimit;
    }
    link_words_ = 0;
    last_deadlock_.reset();
    deadlock_core_ = 0;
    last_halted_core_ = MachineStop::kNoCore;
    last_halt_cycle_ = 0;
  }

  /// Checkpoint the engine's own run progress — per-core finished flags
  /// and last stop reasons, the link word counter, halt attribution.
  /// Core components (processors, engines, hubs) are serialized by
  /// their owner; the deadlock diagnosis is diagnostic output and is
  /// cleared on restore.
  void save_state(ckpt::Writer& writer) const;
  [[nodiscard]] bool load_state(ckpt::Reader& reader);

 private:
  struct Node {
    std::string name;
    iss::Processor* cpu = nullptr;
    CoSimEngine* engine = nullptr;
    fsl::FslHub* hub = nullptr;
    bool finished = false;       ///< halted (terminal; ignored in rounds)
    StopReason last = StopReason::kCycleLimit;
  };

  struct CrossLink {
    std::size_t from_core = 0;
    std::size_t to_core = 0;
    fsl::FslChannel* source = nullptr;  ///< writer's to_hw FIFO
    fsl::FslChannel* sink = nullptr;    ///< reader's from_hw FIFO
  };

  /// Drain every link's source FIFO into its sink FIFO, bounded by
  /// space; returns the number of words moved. Runs on one thread only.
  u64 transfer_links();
  /// Advance every unfinished core to `target`, serially (null pool) or
  /// fanned out; returns the index of a trapped core, or nodes_.size().
  std::size_t run_round(Cycle target, ThreadPool* pool);
  /// Record that core `index` halted at its current clock. Runs on the
  /// orchestrator thread only (callers diff finished flags after the
  /// round barrier); keeps the latest halt, ties to the highest index.
  void note_halt(std::size_t index);

  std::vector<Node> nodes_;
  std::vector<CrossLink> links_;
  Cycle quantum_ = 64;
  unsigned workers_ = 0;
  Cycle deadlock_threshold_ = 100'000;
  u64 link_words_ = 0;
  std::optional<DeadlockDiagnosis> last_deadlock_;
  std::size_t deadlock_core_ = 0;
  std::size_t last_halted_core_ = MachineStop::kNoCore;
  Cycle last_halt_cycle_ = 0;
};

}  // namespace mbcosim::core
