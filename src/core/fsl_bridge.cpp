#include "core/fsl_bridge.hpp"

#include <tuple>

namespace mbcosim::core {

void FslBridge::bind_slave(const SlaveBinding& binding) {
  if (binding.data == nullptr || binding.exists == nullptr ||
      binding.read == nullptr) {
    throw SimError("FslBridge: slave binding needs data, exists and read");
  }
  std::ignore = hub_.to_hw(binding.channel);  // range check
  slaves_.push_back(binding);
}

void FslBridge::bind_master(const MasterBinding& binding) {
  if (binding.data == nullptr || binding.write == nullptr) {
    throw SimError("FslBridge: master binding needs data and write");
  }
  std::ignore = hub_.from_hw(binding.channel);  // range check
  masters_.push_back(binding);
}

void FslBridge::pre_cycle() {
  for (const SlaveBinding& slave : slaves_) {
    const auto& channel = hub_.to_hw(slave.channel);
    const auto head = channel.peek();
    slave.exists->set_bool(head.has_value());
    slave.data->set_raw(head ? static_cast<i64>(head->data) : 0);
    if (slave.control != nullptr) {
      slave.control->set_bool(head ? head->control : false);
    }
  }
  for (const MasterBinding& master : masters_) {
    if (master.full != nullptr) {
      master.full->set_bool(hub_.from_hw(master.channel).full());
    }
  }
}

bool FslBridge::interface_active() const {
  if (wrote_last_cycle_) return true;
  for (const SlaveBinding& slave : slaves_) {
    if (hub_.to_hw(slave.channel).exists()) return true;
  }
  for (const MasterBinding& master : masters_) {
    // Output backpressure: the hardware may be holding words it could
    // not deliver; keep simulating until the FIFO drains.
    if (hub_.from_hw(master.channel).full()) return true;
  }
  return false;
}

void FslBridge::post_cycle() {
  wrote_last_cycle_ = false;
  for (const SlaveBinding& slave : slaves_) {
    if (slave.read->read_bool()) {
      auto& channel = hub_.to_hw(slave.channel);
      if (channel.try_read().has_value()) {
        stats_.words_to_hw += 1;
      }
    }
  }
  for (const MasterBinding& master : masters_) {
    if (master.write->read_bool()) {
      auto& channel = hub_.from_hw(master.channel);
      const auto data = static_cast<Word>(
          static_cast<u64>(master.data->read_raw()) & 0xFFFFFFFFu);
      const bool control =
          master.control != nullptr && master.control->read_bool();
      if (channel.try_write(data, control)) {
        stats_.words_from_hw += 1;
        wrote_last_cycle_ = true;
      } else {
        stats_.refused_writes += 1;
        wrote_last_cycle_ = true;  // the master is still presenting words
      }
    }
  }
}

}  // namespace mbcosim::core
