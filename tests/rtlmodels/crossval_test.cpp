// Full-application cross-validation: the same program + peripheral run on
// (a) the high-level co-simulation environment and (b) the low-level RTL
// system must agree bit-for-bit on results AND cycle-for-cycle on timing.
// This validates the paper's central claim that the high-level simulation
// is cycle-accurate with respect to the low-level implementation.
#include <gtest/gtest.h>

#include "apps/cordic/cordic_app.hpp"
#include "apps/cordic/cordic_sw.hpp"
#include "apps/matmul/matmul_app.hpp"
#include "apps/matmul/matmul_sw.hpp"
#include "asm/assembler.hpp"
#include "rtlmodels/system_rtl.hpp"

namespace mbcosim::rtlmodels {
namespace {

namespace cordic = mbcosim::apps::cordic;
namespace matmul = mbcosim::apps::matmul;

struct CordicCase {
  unsigned num_pes;
  unsigned iterations;
};

class CordicCrossVal : public ::testing::TestWithParam<CordicCase> {};

TEST_P(CordicCrossVal, RtlMatchesCoSimulation) {
  const auto [num_pes, iterations] = GetParam();
  auto [x, y] = cordic::make_cordic_dataset(10, 0xC0DE + num_pes);

  cordic::CordicRunConfig config;
  config.num_pes = num_pes;
  config.iterations = iterations;
  config.items = 10;
  const auto high_level = cordic::run_cordic(config, x, y);

  const auto program = assembler::assemble_or_throw(
      cordic::hw_driver_program(x, y, iterations, num_pes, 5));
  isa::CpuConfig cpu_config;
  cpu_config.has_barrel_shifter = false;
  RtlSystem rtl(program, cpu_config,
                RtlPeripheralConfig{RtlPeripheralConfig::Kind::kCordic,
                                    num_pes});
  ASSERT_EQ(rtl.run(5'000'000), RtlStopReason::kHalted);

  EXPECT_EQ(rtl.cycles(), high_level.cycles)
      << "high-level co-simulation must be cycle-accurate vs RTL";
  const Addr results = program.symbol("results");
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(static_cast<i32>(
                  rtl.memory().read_word(results + static_cast<Addr>(i) * 4)),
              high_level.quotients_raw[i])
        << "item " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, CordicCrossVal,
    ::testing::Values(CordicCase{2, 24}, CordicCase{4, 24}, CordicCase{6, 24},
                      CordicCase{8, 24}, CordicCase{4, 32}),
    [](const ::testing::TestParamInfo<CordicCase>& info) {
      return "P" + std::to_string(info.param.num_pes) + "_iters" +
             std::to_string(info.param.iterations);
    });

struct MatmulCase {
  unsigned matrix_size;
  unsigned block_size;
};

class MatmulCrossVal : public ::testing::TestWithParam<MatmulCase> {};

TEST_P(MatmulCrossVal, RtlMatchesCoSimulation) {
  const auto [matrix_size, block_size] = GetParam();
  const auto a = matmul::make_matrix(matrix_size, 0xAAA);
  const auto b = matmul::make_matrix(matrix_size, 0xBBB);

  matmul::MatmulRunConfig config;
  config.matrix_size = matrix_size;
  config.block_size = block_size;
  const auto high_level = matmul::run_matmul(config, a, b);

  const auto program = assembler::assemble_or_throw(
      matmul::hw_driver_program(a, b, block_size));
  isa::CpuConfig cpu_config;
  cpu_config.has_barrel_shifter = false;
  RtlSystem rtl(program, cpu_config,
                RtlPeripheralConfig{RtlPeripheralConfig::Kind::kMatmul,
                                    block_size},
                256 * 1024);
  ASSERT_EQ(rtl.run(5'000'000), RtlStopReason::kHalted);

  EXPECT_EQ(rtl.cycles(), high_level.cycles);
  const Addr c_addr = program.symbol("mat_c");
  for (std::size_t i = 0; i < high_level.c.data.size(); ++i) {
    EXPECT_EQ(static_cast<i32>(
                  rtl.memory().read_word(c_addr + static_cast<Addr>(i) * 4)),
              high_level.c.data[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, MatmulCrossVal,
    ::testing::Values(MatmulCase{8, 2}, MatmulCase{8, 4}, MatmulCase{12, 3},
                      MatmulCase{16, 4}),
    [](const ::testing::TestParamInfo<MatmulCase>& info) {
      return "N" + std::to_string(info.param.matrix_size) + "_block" +
             std::to_string(info.param.block_size);
    });

TEST(KernelCost, RtlSimulationDoesFarMoreWorkPerCycle) {
  // Quantifies WHY low-level simulation is slow (paper Section II): the
  // event kernel processes many events and delta cycles per clock.
  auto [x, y] = cordic::make_cordic_dataset(5, 3);
  const auto program = assembler::assemble_or_throw(
      cordic::hw_driver_program(x, y, 8, 4, 5));
  isa::CpuConfig cpu_config;
  cpu_config.has_barrel_shifter = false;
  RtlSystem rtl(program, cpu_config,
                RtlPeripheralConfig{RtlPeripheralConfig::Kind::kCordic, 4});
  ASSERT_EQ(rtl.run(1'000'000), RtlStopReason::kHalted);
  const auto& stats = rtl.kernel_stats();
  EXPECT_GT(stats.events, stats.clock_cycles);
  EXPECT_GT(stats.process_activations, stats.clock_cycles);
  EXPECT_GE(stats.delta_cycles, 2 * stats.clock_cycles);
}

}  // namespace
}  // namespace mbcosim::rtlmodels
