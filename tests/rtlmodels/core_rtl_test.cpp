// Cross-validation of the RTL soft-processor model against the ISS:
// random ALU programs and targeted control-flow programs must produce
// identical architectural state AND identical cycle counts (the paper's
// cycle-accuracy requirement, Section I).
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "iss/test_helpers.hpp"
#include "rtlmodels/system_rtl.hpp"

namespace mbcosim::rtlmodels {
namespace {

/// Run one program on both simulators and compare everything.
void cross_validate(const std::string& source,
                    isa::CpuConfig config =
                        iss::testing::TestMachine::make_default_config()) {
  // High-level ISS.
  iss::testing::TestMachine hl(source, config);
  const iss::Event hl_event = hl.run();

  // Low-level RTL model.
  const auto program = assembler::assemble_or_throw(source);
  RtlSystem rtl(program, config, RtlPeripheralConfig{});
  const RtlStopReason rtl_reason = rtl.run(2'000'000);

  if (hl_event == iss::Event::kHalted) {
    ASSERT_EQ(rtl_reason, RtlStopReason::kHalted) << source;
  } else if (hl_event == iss::Event::kIllegal) {
    ASSERT_EQ(rtl_reason, RtlStopReason::kIllegal) << source;
  }
  EXPECT_EQ(rtl.cycles(), hl.cpu.stats().cycles) << "cycle-count mismatch";
  EXPECT_EQ(rtl.core().instructions_retired(), hl.cpu.stats().instructions);
  for (unsigned reg = 0; reg < isa::kNumRegisters; ++reg) {
    ASSERT_EQ(rtl.core().reg_value(reg), hl.cpu.reg(reg))
        << "r" << reg << " differs";
  }
  EXPECT_EQ(rtl.core().msr_value(), hl.cpu.msr());
}

TEST(CoreRtl, AluBasics) {
  cross_validate(
      "  li r3, 100\n"
      "  li r4, -3\n"
      "  add r5, r3, r4\n"
      "  rsub r6, r4, r3\n"
      "  mul r7, r3, r4\n"
      "  and r8, r3, r4\n"
      "  or r9, r3, r4\n"
      "  xor r10, r3, r4\n"
      "  andn r11, r3, r4\n"
      "  cmp r12, r3, r4\n"
      "  cmpu r13, r3, r4\n"
      "  halt\n");
}

TEST(CoreRtl, CarryChainOps) {
  cross_validate(
      "  li r3, 0xFFFFFFFF\n"
      "  li r4, 1\n"
      "  add r5, r3, r4\n"
      "  addc r6, r4, r4\n"
      "  addk r7, r3, r4\n"
      "  rsubc r8, r4, r3\n"
      "  sra r9, r3\n"
      "  src r10, r4\n"
      "  srl r11, r3\n"
      "  halt\n");
}

TEST(CoreRtl, ShiftsAndExtensions) {
  cross_validate(
      "  li r3, 0x8000FF80\n"
      "  li r4, 7\n"
      "  bsll r5, r3, r4\n"
      "  bsra r6, r3, r4\n"
      "  bsrl r7, r3, r4\n"
      "  bsrai r8, r3, 12\n"
      "  sext8 r9, r3\n"
      "  sext16 r10, r3\n"
      "  halt\n");
}

TEST(CoreRtl, Divider) {
  cross_validate(
      "  li r3, -7\n"
      "  li r4, 1000\n"
      "  idiv r5, r3, r4\n"
      "  idivu r6, r3, r4\n"
      "  idiv r7, r0, r4\n"   // divide by zero
      "  halt\n");
}

TEST(CoreRtl, LoadsAndStores) {
  cross_validate(
      "  la r5, buffer\n"
      "  li r3, 0xA1B2C3D4\n"
      "  swi r3, r5, 0\n"
      "  lwi r4, r5, 0\n"
      "  lbui r6, r5, 1\n"
      "  lhui r7, r5, 2\n"
      "  sbi r3, r5, 4\n"
      "  shi r3, r5, 8\n"
      "  lwi r8, r5, 4\n"
      "  lwi r9, r5, 8\n"
      "  halt\n"
      "buffer: .space 16\n");
}

TEST(CoreRtl, BranchesAndLoops) {
  cross_validate(
      "  li r3, 5\n"
      "  addk r4, r0, r0\n"
      "loop:\n"
      "  addk r4, r4, r3\n"
      "  addik r3, r3, -1\n"
      "  bnei r3, loop\n"
      "  bri over\n"
      "  li r5, 99\n"
      "over:\n"
      "  halt\n");
}

TEST(CoreRtl, DelaySlotsAndCalls) {
  cross_validate(
      "  brlid r15, func\n"
      "  addk r3, r0, r0\n"
      "  li r4, 2\n"
      "  halt\n"
      "func:\n"
      "  li r5, 1\n"
      "  rtsd r15, 8\n"
      "  addik r6, r0, 77\n");
}

TEST(CoreRtl, MsrAccess) {
  cross_validate(
      "  li r3, 1\n"
      "  mts rmsr, r3\n"
      "  mfs r4, rmsr\n"
      "  mfs r5, rpc\n"
      "  halt\n");
}

TEST(CoreRtl, IllegalOpcodeMatches) {
  cross_validate("  .word 0xFC000000\n");
}

TEST(CoreRtl, ImmPrefixBehaviour) {
  cross_validate(
      "  imm 0x7FFF\n"
      "  addik r3, r0, -1\n"
      "  imm 0x8000\n"
      "  ori r4, r0, 0x1234\n"
      "  addik r5, r0, 0x100\n"  // no prefix: sign-extended
      "  halt\n");
}

class RandomProgramCrossValidation : public ::testing::TestWithParam<u64> {};

TEST_P(RandomProgramCrossValidation, IdenticalStateAndCycles) {
  Rng rng(GetParam());
  // Random straight-line ALU program over registers r1..r15.
  std::string source;
  for (unsigned reg = 1; reg <= 6; ++reg) {
    source += "li r" + std::to_string(reg) + ", " +
              std::to_string(static_cast<i64>(rng.next_u32())) + "\n";
  }
  static constexpr const char* kTemplates[] = {
      "add", "rsub", "addk", "rsubk", "addc", "mul", "or", "and", "xor",
      "andn", "bsll", "bsra", "bsrl", "cmp", "cmpu",
  };
  for (int i = 0; i < 50; ++i) {
    const char* op = kTemplates[rng.next_below(std::size(kTemplates))];
    const unsigned rd = 1 + unsigned(rng.next_below(15));
    const unsigned ra = 1 + unsigned(rng.next_below(15));
    unsigned rb = 1 + unsigned(rng.next_below(15));
    if (std::string(op).rfind("bs", 0) == 0) {
      // keep shift amounts sane by masking through a small register
      source += "andi r" + std::to_string(rb) + ", r" + std::to_string(rb) +
                ", 31\n";
    }
    source += std::string(op) + " r" + std::to_string(rd) + ", r" +
              std::to_string(ra) + ", r" + std::to_string(rb) + "\n";
  }
  source += "halt\n";
  cross_validate(source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramCrossValidation,
                         ::testing::Values(7u, 14u, 21u, 28u, 35u, 42u));

}  // namespace
}  // namespace mbcosim::rtlmodels
