// Rng regression tests. The generator feeds every seeded experiment in
// the repo — fault-plan sampling, bench workload synthesis, property
// tests — so its streams are pinned bit-for-bit: a change to seeding,
// the xoshiro core, or the bounded reduction shows up here before it
// silently re-rolls every campaign.
#include <array>
#include <cstddef>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace mbcosim {
namespace {

TEST(Rng, SeededStreamIsPinned) {
  Rng rng(42);
  const std::array<u64, 4> expected = {
      0x15780b2e0c2ec716ull,
      0x6104d9866d113a7eull,
      0xae17533239e499a1ull,
      0xecb8ad4703b360a1ull,
  };
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rng.next_u64(), expected[i]) << "draw " << i;
  }
}

TEST(Rng, NextBelowIsTheWideningMultiplyReduction) {
  // next_below(b) must be floor(next_u64() * b / 2^64) — the high 64
  // bits of the 128-bit product — NOT the modulo reduction it replaced
  // (`next_u64() % b` would favor small residues for bounds that do not
  // divide 2^64, and draw from xoshiro256**'s weakest low bits).
  Rng draws(42);
  Rng reduced(42);
  for (int i = 0; i < 256; ++i) {
    const u64 raw = draws.next_u64();
    const u64 expected = static_cast<u64>(
        (static_cast<unsigned __int128>(raw) * 1000u) >> 64);
    EXPECT_EQ(reduced.next_below(1000), expected) << "draw " << i;
  }
  // The pinned head of the seed-42 bound-1000 stream, so the values in
  // checked-in campaign reports stay explainable.
  Rng pinned(42);
  EXPECT_EQ(pinned.next_below(1000), 83u);
  EXPECT_EQ(pinned.next_below(1000), 378u);
  EXPECT_EQ(pinned.next_below(1000), 680u);
  EXPECT_EQ(pinned.next_below(1000), 924u);
}

TEST(Rng, NextBelowStaysInBound) {
  Rng rng(123);
  const u64 bounds[] = {1, 2, 3, 7, 1000, u64{1} << 63};
  for (const u64 bound : bounds) {
    for (int i = 0; i < 64; ++i) {
      EXPECT_LT(rng.next_below(bound), bound) << "bound " << bound;
    }
  }
}

TEST(Rng, NextInCoversTheInclusiveRange) {
  Rng rng(7);
  EXPECT_EQ(rng.next_in(10, 20), 17);
  EXPECT_EQ(rng.next_in(10, 20), 13);
  EXPECT_EQ(rng.next_in(10, 20), 19);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 4096; ++i) {
    const i64 value = rng.next_in(-2, 2);
    ASSERT_GE(value, -2);
    ASSERT_LE(value, 2);
    saw_lo |= value == -2;
    saw_hi |= value == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, StateRoundTripResumesTheStream) {
  Rng rng(99);
  for (int i = 0; i < 17; ++i) rng.next_u64();
  const std::array<u64, 4> mid = rng.state();

  Rng resumed;  // different seed; state overrides it completely
  resumed.set_state(mid);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(resumed.next_u64(), rng.next_u64()) << "draw " << i;
  }
}

}  // namespace
}  // namespace mbcosim
