// The shared integer-only JSON layer: parse/dump round trips, syntax
// diagnostics with line/column, string escaping, and the get_* field
// helpers both the machine front end and the simulation server build
// their schemas on.
#include <string>

#include <gtest/gtest.h>

#include "common/json.hpp"

namespace mbcosim::common::json {
namespace {

TEST(Json, ParsesEveryValueKind) {
  const auto root = parse(
      R"({"array":[1,2,3],"flag":true,"none":null,"num":-42,"text":"hi"})");
  ASSERT_TRUE(root.ok()) << root.error();
  ASSERT_TRUE(root.value().is_object());
  const Object& top = root.value().object();
  EXPECT_TRUE(top.at("array").is_array());
  EXPECT_EQ(top.at("array").array().size(), 3u);
  EXPECT_EQ(top.at("array").array()[2].integer(), 3);
  EXPECT_TRUE(top.at("flag").boolean());
  EXPECT_TRUE(top.at("none").is_null());
  EXPECT_EQ(top.at("num").integer(), -42);
  EXPECT_EQ(top.at("text").string(), "hi");
}

TEST(Json, DumpParseRoundTripIsExact) {
  const std::string text =
      R"({"a":[{"x":1},{"y":[true,false,null]}],"b":"q\"uo\\te","c":-7})";
  const auto parsed = parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(dump(parsed.value()), text);  // keys already sorted, compact
  const auto reparsed = parse(dump(parsed.value()));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(dump(reparsed.value()), text);
}

TEST(Json, DumpSortsObjectKeys) {
  const auto parsed = parse(R"({"zz":1,"aa":2,"mm":3})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(dump(parsed.value()), R"({"aa":2,"mm":3,"zz":1})");
}

TEST(Json, RejectsFloatsWithPosition) {
  const auto bad = parse("{\n  \"x\": 1.5\n}");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().rfind("[json-syntax]", 0), 0u) << bad.error();
  EXPECT_NE(bad.error().find("line 2"), std::string::npos) << bad.error();
}

TEST(Json, RejectsTrailingGarbageAndBadSyntax) {
  EXPECT_FALSE(parse("{} {}").ok());
  EXPECT_FALSE(parse("{\"a\":}").ok());
  EXPECT_FALSE(parse("[1,]").ok());
  EXPECT_FALSE(parse("\"unterminated").ok());
  EXPECT_FALSE(parse("").ok());
  for (const char* bad : {"{} {}", "nope", "[1,]"}) {
    const auto result = parse(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().rfind("[json-syntax]", 0), 0u) << result.error();
  }
}

TEST(Json, RejectsDuplicateObjectKeys) {
  // Silently keeping either occurrence would mask client mistakes in
  // machine descriptions and server requests; the parser refuses.
  const auto bad = parse(R"({"a":1,"a":2})");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().rfind("[json-syntax]", 0), 0u) << bad.error();
  EXPECT_NE(bad.error().find("duplicate key \"a\""), std::string::npos)
      << bad.error();
  // Same key on different nesting levels is fine.
  EXPECT_TRUE(parse(R"({"a":{"a":1}})").ok());
}

TEST(Json, EscapeCoversControlCharacters) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(escape("x\n\t\r"), "x\\n\\t\\r");
  EXPECT_EQ(escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, FieldHelpersReportStableCodes) {
  const auto parsed = parse(R"({"n":5,"neg":-1,"s":"v","yes":true})");
  ASSERT_TRUE(parsed.ok());
  const Object& top = parsed.value().object();

  std::string text;
  EXPECT_EQ(get_string(top, "s", "ctx", true, text), "");
  EXPECT_EQ(text, "v");
  EXPECT_EQ(get_string(top, "missing", "ctx", true, text)
                .rfind("[missing-field]", 0),
            0u);
  EXPECT_EQ(get_string(top, "missing", "ctx", false, text), "");
  EXPECT_EQ(get_string(top, "n", "ctx", true, text).rfind("[bad-field]", 0),
            0u);

  long long number = 0;
  EXPECT_EQ(get_int(top, "n", "ctx", true, number), "");
  EXPECT_EQ(number, 5);
  EXPECT_EQ(get_int(top, "s", "ctx", true, number).rfind("[bad-field]", 0),
            0u);

  bool flag = false;
  EXPECT_EQ(get_bool(top, "yes", "ctx", flag), "");
  EXPECT_TRUE(flag);
  EXPECT_EQ(get_bool(top, "n", "ctx", flag).rfind("[bad-field]", 0), 0u);

  unsigned channel = 9;
  EXPECT_EQ(get_unsigned(top, "n", "ctx", true, 0, channel), "");
  EXPECT_EQ(channel, 5u);
  EXPECT_EQ(
      get_unsigned(top, "neg", "ctx", true, 0, channel).rfind("[bad-field]", 0),
      0u);
  EXPECT_EQ(get_unsigned(top, "missing", "ctx", false, 7, channel), "");
  EXPECT_EQ(channel, 7u);
  const std::string in_context = get_int(top, "missing", "widget 'w'", true,
                                         number);
  EXPECT_NE(in_context.find("in widget 'w'"), std::string::npos) << in_context;
}

}  // namespace
}  // namespace mbcosim::common::json
