// Tests for the RNG, logger and Expected utilities.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace mbcosim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextInCoversRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const i64 v = rng.next_in(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, ReseedRestoresSequence) {
  Rng rng(55);
  const u64 first = rng.next_u64();
  rng.next_u64();
  rng.reseed(55);
  EXPECT_EQ(rng.next_u64(), first);
}

class LogCapture {
 public:
  LogCapture() {
    previous_level_ = Log::level();
    Log::set_level(LogLevel::kTrace);
    previous_ = Log::set_sink([this](LogLevel level, std::string_view msg) {
      lines_.emplace_back(Log::level_name(level) + std::string(": ") +
                          std::string(msg));
    });
  }
  ~LogCapture() {
    Log::set_sink(std::move(previous_));
    Log::set_level(previous_level_);
  }
  std::vector<std::string> lines_;

 private:
  Log::Sink previous_;
  LogLevel previous_level_;
};

TEST(Log, SinkReceivesMessages) {
  LogCapture capture;
  MBC_INFO << "hello " << 42;
  ASSERT_EQ(capture.lines_.size(), 1u);
  EXPECT_EQ(capture.lines_[0], "INFO: hello 42");
}

TEST(Log, LevelFilters) {
  LogCapture capture;
  Log::set_level(LogLevel::kError);
  MBC_DEBUG << "dropped";
  MBC_ERROR << "kept";
  ASSERT_EQ(capture.lines_.size(), 1u);
  EXPECT_EQ(capture.lines_[0], "ERROR: kept");
}

TEST(Log, OffSilencesEverything) {
  LogCapture capture;
  Log::set_level(LogLevel::kOff);
  MBC_ERROR << "nope";
  EXPECT_TRUE(capture.lines_.empty());
}

TEST(Expected, HoldsValue) {
  Expected<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
}

TEST(Expected, HoldsError) {
  auto failed = Expected<int>::failure("boom");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error(), "boom");
  EXPECT_THROW((void)failed.value(), SimError);
}

TEST(Expected, MoveOutValue) {
  Expected<std::string> ok(std::string("payload"));
  const std::string moved = std::move(ok).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace mbcosim
