// Tests for the bit-manipulation helpers.
#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace mbcosim {
namespace {

TEST(Bits, ExtractField) {
  EXPECT_EQ(bits(0xDEADBEEFu, 0, 4), 0xFu);
  EXPECT_EQ(bits(0xDEADBEEFu, 28, 4), 0xDu);
  EXPECT_EQ(bits(0xDEADBEEFu, 8, 8), 0xBEu);
  EXPECT_EQ(bits(0xFFFFFFFFu, 0, 32), 0xFFFFFFFFu);
}

TEST(Bits, InsertField) {
  EXPECT_EQ(insert_bits(0u, 4, 4, 0xF), 0xF0u);
  EXPECT_EQ(insert_bits(0xFFFFFFFFu, 8, 8, 0), 0xFFFF00FFu);
  EXPECT_EQ(insert_bits(0u, 31, 1, 1), 0x80000000u);
  // Field wider than the slot is masked.
  EXPECT_EQ(insert_bits(0u, 0, 4, 0x1F), 0xFu);
}

TEST(Bits, SingleBit) {
  EXPECT_TRUE(bit(0x80000000u, 31));
  EXPECT_FALSE(bit(0x7FFFFFFFu, 31));
  EXPECT_TRUE(bit(1u, 0));
}

TEST(Bits, SignExtend32) {
  EXPECT_EQ(sign_extend(0xFF, 8), 0xFFFFFFFFu);
  EXPECT_EQ(sign_extend(0x7F, 8), 0x7Fu);
  EXPECT_EQ(sign_extend(0x8000, 16), 0xFFFF8000u);
  EXPECT_EQ(sign_extend(0x7FFF, 16), 0x7FFFu);
  EXPECT_EQ(sign_extend(0xDEADBEEF, 32), 0xDEADBEEFu);
}

TEST(Bits, SignExtend64) {
  EXPECT_EQ(sign_extend64(0xFF, 8), -1);
  EXPECT_EQ(sign_extend64(0x80, 8), -128);
  EXPECT_EQ(sign_extend64(0x7F, 8), 127);
  EXPECT_EQ(sign_extend64(~u64{0}, 64), -1);
}

TEST(Bits, LowMask64) {
  EXPECT_EQ(low_mask64(0), 0u);
  EXPECT_EQ(low_mask64(1), 1u);
  EXPECT_EQ(low_mask64(8), 0xFFu);
  EXPECT_EQ(low_mask64(64), ~u64{0});
}

TEST(Bits, WordsForBytes) {
  EXPECT_EQ(words_for_bytes(0), 0u);
  EXPECT_EQ(words_for_bytes(1), 1u);
  EXPECT_EQ(words_for_bytes(4), 1u);
  EXPECT_EQ(words_for_bytes(5), 2u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(10u, 3u), 4u);
  EXPECT_EQ(ceil_div(9u, 3u), 3u);
  EXPECT_EQ(ceil_div(0u, 3u), 0u);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Bits, CyclesToUsec) {
  // 50 cycles at 50 MHz = 1 microsecond.
  EXPECT_DOUBLE_EQ(cycles_to_usec(50), 1.0);
  EXPECT_DOUBLE_EQ(cycles_to_usec(50'000'000), 1.0e6);
}

}  // namespace
}  // namespace mbcosim
