// Unit and property tests for the fixed-point arithmetic library.
#include "common/fixed_point.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace mbcosim {
namespace {

TEST(FixFormat, ValidatesWordBits) {
  EXPECT_THROW((FixFormat{Signedness::kSigned, 0, 0}.validate()), SimError);
  EXPECT_THROW((FixFormat{Signedness::kSigned, 64, 0}.validate()), SimError);
  EXPECT_NO_THROW((FixFormat{Signedness::kSigned, 63, 0}.validate()));
  EXPECT_NO_THROW((FixFormat{Signedness::kUnsigned, 1, 0}.validate()));
}

TEST(FixFormat, ValidatesFracBits) {
  EXPECT_THROW((FixFormat{Signedness::kSigned, 8, 9}.validate()), SimError);
  EXPECT_NO_THROW((FixFormat{Signedness::kSigned, 8, 8}.validate()));
}

TEST(FixFormat, RawRanges) {
  const FixFormat s8 = FixFormat::signed_fix(8, 0);
  EXPECT_EQ(s8.max_raw(), 127);
  EXPECT_EQ(s8.min_raw(), -128);
  const FixFormat u8f = FixFormat::unsigned_fix(8, 0);
  EXPECT_EQ(u8f.max_raw(), 255);
  EXPECT_EQ(u8f.min_raw(), 0);
}

TEST(FixFormat, Resolution) {
  EXPECT_DOUBLE_EQ(FixFormat::signed_fix(16, 8).resolution(), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(FixFormat::signed_fix(16, 0).resolution(), 1.0);
}

TEST(FixFormat, Names) {
  EXPECT_EQ(FixFormat::signed_fix(32, 24).to_string(), "Fix32_24");
  EXPECT_EQ(FixFormat::unsigned_fix(6, 0).to_string(), "UFix6_0");
}

TEST(Fix, FromRawMasksAndExtends) {
  const Fix v = Fix::from_raw(FixFormat::signed_fix(8, 0), 0x1FF);
  EXPECT_EQ(v.raw(), -1);  // low 8 bits = 0xFF, sign-extended
  const Fix u = Fix::from_raw(FixFormat::unsigned_fix(8, 0), 0x1FF);
  EXPECT_EQ(u.raw(), 0xFF);
}

TEST(Fix, FromDoubleRoundsAndSaturates) {
  const FixFormat f = FixFormat::signed_fix(8, 4);
  EXPECT_EQ(Fix::from_double(f, 1.5).raw(), 24);
  EXPECT_EQ(Fix::from_double(f, 100.0).raw(), 127);   // saturate high
  EXPECT_EQ(Fix::from_double(f, -100.0).raw(), -128); // saturate low
}

TEST(Fix, FromIntRejectsOverflow) {
  const FixFormat f = FixFormat::signed_fix(8, 0);
  EXPECT_NO_THROW(Fix::from_int(f, 127));
  EXPECT_THROW(Fix::from_int(f, 128), SimError);
  EXPECT_THROW(Fix::from_int(FixFormat::signed_fix(8, 2), 1), SimError);
}

TEST(Fix, ToDoubleRoundTrip) {
  const FixFormat f = FixFormat::signed_fix(32, 24);
  for (double value : {0.0, 1.0, -1.0, 0.5, -0.25, 100.125, -99.875}) {
    EXPECT_DOUBLE_EQ(Fix::from_double(f, value).to_double(), value);
  }
}

TEST(Fix, RawBitsTruncatesToWord) {
  const Fix v = Fix::from_raw(FixFormat::signed_fix(16, 0), -1);
  EXPECT_EQ(v.raw_bits(), 0xFFFFu);
}

TEST(Fix, AddFullGrowsFormat) {
  const FixFormat f = FixFormat::signed_fix(8, 4);
  const Fix a = Fix::from_double(f, 7.5);
  const Fix b = Fix::from_double(f, 7.25);
  const Fix sum = a.add_full(b);
  EXPECT_DOUBLE_EQ(sum.to_double(), 14.75);  // would overflow Fix8_4
  EXPECT_GE(sum.format().word_bits, 9);
}

TEST(Fix, AddFullMixedBinaryPoints) {
  const Fix a = Fix::from_double(FixFormat::signed_fix(8, 4), 1.5);
  const Fix b = Fix::from_double(FixFormat::signed_fix(8, 2), 2.25);
  EXPECT_DOUBLE_EQ(a.add_full(b).to_double(), 3.75);
}

TEST(Fix, AddFullMixedSignedness) {
  const Fix a = Fix::from_raw(FixFormat::unsigned_fix(8, 0), 200);
  const Fix b = Fix::from_raw(FixFormat::signed_fix(8, 0), -100);
  EXPECT_DOUBLE_EQ(a.add_full(b).to_double(), 100.0);
}

TEST(Fix, SubFullIsSigned) {
  const Fix a = Fix::from_raw(FixFormat::unsigned_fix(8, 0), 10);
  const Fix b = Fix::from_raw(FixFormat::unsigned_fix(8, 0), 20);
  const Fix diff = a.sub_full(b);
  EXPECT_EQ(diff.format().sign, Signedness::kSigned);
  EXPECT_DOUBLE_EQ(diff.to_double(), -10.0);
}

TEST(Fix, MulFullExact) {
  const FixFormat f = FixFormat::signed_fix(16, 8);
  const Fix a = Fix::from_double(f, 3.5);
  const Fix b = Fix::from_double(f, -2.25);
  EXPECT_DOUBLE_EQ(a.mul_full(b).to_double(), -7.875);
}

TEST(Fix, NegateFull) {
  const FixFormat f = FixFormat::signed_fix(8, 0);
  const Fix v = Fix::from_int(f, -128);
  // Negating the most negative value needs the extra bit.
  EXPECT_DOUBLE_EQ(v.negate_full().to_double(), 128.0);
}

TEST(Fix, ShiftRightExactKeepsValuePrecision) {
  const Fix v = Fix::from_double(FixFormat::signed_fix(16, 8), 5.0);
  EXPECT_DOUBLE_EQ(v.shift_right_exact(3).to_double(), 0.625);
}

TEST(Fix, ShiftLeftExact) {
  const Fix v = Fix::from_double(FixFormat::signed_fix(16, 8), 5.0);
  EXPECT_DOUBLE_EQ(v.shift_left_exact(3).to_double(), 40.0);
}

TEST(Fix, ShiftRightKeepFormatTruncatesTowardNegInfinity) {
  const FixFormat f = FixFormat::signed_fix(8, 0);
  EXPECT_EQ(Fix::from_int(f, -3).shift_right_keep_format(1).raw(), -2);
  EXPECT_EQ(Fix::from_int(f, 3).shift_right_keep_format(1).raw(), 1);
  EXPECT_EQ(Fix::from_int(f, -1).shift_right_keep_format(63).raw(), -1);
}

TEST(Fix, CastTruncate) {
  const Fix v = Fix::from_double(FixFormat::signed_fix(16, 8), 1.99609375);
  const Fix c = v.cast(FixFormat::signed_fix(16, 4));
  EXPECT_DOUBLE_EQ(c.to_double(), 1.9375);  // floor to 1/16
}

TEST(Fix, CastRoundHalfUp) {
  const FixFormat out = FixFormat::signed_fix(16, 0);
  EXPECT_DOUBLE_EQ(Fix::from_double(FixFormat::signed_fix(16, 8), 1.5)
                       .cast(out, Quantization::kRoundHalfUp)
                       .to_double(),
                   2.0);
  EXPECT_DOUBLE_EQ(Fix::from_double(FixFormat::signed_fix(16, 8), 1.25)
                       .cast(out, Quantization::kRoundHalfUp)
                       .to_double(),
                   1.0);
}

TEST(Fix, CastSaturate) {
  const Fix big = Fix::from_double(FixFormat::signed_fix(16, 0), 1000.0);
  const Fix sat = big.cast(FixFormat::signed_fix(8, 0),
                           Quantization::kTruncate, Overflow::kSaturate);
  EXPECT_EQ(sat.raw(), 127);
  const Fix neg = Fix::from_double(FixFormat::signed_fix(16, 0), -1000.0);
  EXPECT_EQ(neg.cast(FixFormat::signed_fix(8, 0), Quantization::kTruncate,
                     Overflow::kSaturate)
                .raw(),
            -128);
}

TEST(Fix, CastWrapMatchesHardware) {
  const Fix v = Fix::from_double(FixFormat::signed_fix(16, 0), 130.0);
  EXPECT_EQ(v.cast(FixFormat::signed_fix(8, 0)).raw(), -126);  // 130 mod 256
}

TEST(Fix, CompareAcrossFormats) {
  const Fix a = Fix::from_double(FixFormat::signed_fix(16, 8), 1.5);
  const Fix b = Fix::from_double(FixFormat::signed_fix(32, 24), 1.5);
  EXPECT_EQ(a, b);
  const Fix c = Fix::from_double(FixFormat::signed_fix(32, 24), 1.25);
  EXPECT_LT(c, a);
}

TEST(Fix, ZeroAndSignPredicates) {
  const FixFormat f = FixFormat::signed_fix(8, 0);
  EXPECT_TRUE(Fix::from_int(f, 0).is_zero());
  EXPECT_TRUE(Fix::from_int(f, -1).is_negative());
  EXPECT_FALSE(Fix::from_int(f, 1).is_negative());
}

// ---- Property tests: fixed-point arithmetic agrees with wide host
// arithmetic over random values and formats. --------------------------------

struct FixPropertyCase {
  u64 seed;
};

class FixProperty : public ::testing::TestWithParam<u64> {};

TEST_P(FixProperty, AddSubMulAgreeWithHostArithmetic) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const u8 wa = static_cast<u8>(rng.next_in(2, 24));
    const u8 fa = static_cast<u8>(rng.next_in(0, wa));
    const u8 wb = static_cast<u8>(rng.next_in(2, 24));
    const u8 fb = static_cast<u8>(rng.next_in(0, wb));
    const FixFormat ffa{Signedness::kSigned, wa, fa};
    const FixFormat ffb{Signedness::kSigned, wb, fb};
    const Fix a = Fix::from_raw(ffa, rng.next_in(ffa.min_raw(), ffa.max_raw()));
    const Fix b = Fix::from_raw(ffb, rng.next_in(ffb.min_raw(), ffb.max_raw()));

    // Exact rational comparison via scaled integers.
    const int frac = std::max(int(fa), int(fb));
    const i64 sa = a.raw() << (frac - fa);
    const i64 sb = b.raw() << (frac - fb);

    const Fix sum = a.add_full(b);
    EXPECT_DOUBLE_EQ(sum.to_double(),
                     std::ldexp(static_cast<double>(sa + sb), -frac));
    const Fix diff = a.sub_full(b);
    EXPECT_DOUBLE_EQ(diff.to_double(),
                     std::ldexp(static_cast<double>(sa - sb), -frac));
    const Fix product = a.mul_full(b);
    EXPECT_DOUBLE_EQ(product.to_double(),
                     a.to_double() * b.to_double());
  }
}

TEST_P(FixProperty, CastWrapEqualsModularArithmetic) {
  Rng rng(GetParam() ^ 0x1234u);
  for (int trial = 0; trial < 200; ++trial) {
    const FixFormat wide = FixFormat::signed_fix(32, 0);
    const FixFormat narrow{Signedness::kSigned,
                           static_cast<u8>(rng.next_in(4, 16)), 0};
    const i64 value = rng.next_in(-(i64{1} << 30), i64{1} << 30);
    const Fix wrapped = Fix::from_raw(wide, value).cast(narrow);
    EXPECT_EQ(wrapped.raw(),
              sign_extend64(static_cast<u64>(value), narrow.word_bits))
        << "value=" << value << " width=" << int(narrow.word_bits);
  }
}

TEST_P(FixProperty, CompareIsConsistentWithDoubles) {
  Rng rng(GetParam() ^ 0x777u);
  for (int trial = 0; trial < 200; ++trial) {
    const FixFormat fa{Signedness::kSigned, 20,
                       static_cast<u8>(rng.next_in(0, 16))};
    const FixFormat fb{Signedness::kSigned, 20,
                       static_cast<u8>(rng.next_in(0, 16))};
    const Fix a = Fix::from_raw(fa, rng.next_in(fa.min_raw(), fa.max_raw()));
    const Fix b = Fix::from_raw(fb, rng.next_in(fb.min_raw(), fb.max_raw()));
    EXPECT_EQ(a < b, a.to_double() < b.to_double());
    EXPECT_EQ(a == b, a.to_double() == b.to_double());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace mbcosim
