// Integration: software measuring its own execution time through an OPB
// timer peripheral, the standard EDK-style profiling arrangement. Also
// exercises mixed LMB + OPB traffic in one program.
#include <gtest/gtest.h>

#include "bus/opb_bus.hpp"
#include "iss/test_helpers.hpp"

namespace mbcosim::iss {
namespace {

using testing::TestMachine;

class OpbIntegration : public ::testing::Test {
 protected:
  void attach_timer(TestMachine& m) {
    auto timer = std::make_unique<bus::OpbTimer>();
    timer_ = timer.get();
    opb_.map("timer", kTimerBase, 8, std::move(timer));
    opb_.map("scratch", kScratchBase, 64,
             std::make_unique<bus::OpbScratchpad>(16));
    m.cpu.attach_opb(&opb_);
  }

  /// Advance the timer alongside the processor (the co-simulation engine
  /// would do this; here we step manually).
  Event run_with_timer(TestMachine& m, Cycle budget = 1'000'000) {
    while (!m.cpu.halted() && m.cpu.stats().cycles < budget) {
      const Cycle before = m.cpu.stats().cycles;
      const StepResult result = m.cpu.step();
      timer_->tick(m.cpu.stats().cycles - before);
      if (result.event == Event::kIllegal) return result.event;
      if (result.event == Event::kHalted) return result.event;
    }
    return m.cpu.halted() ? Event::kHalted : Event::kRetired;
  }

  static constexpr Addr kTimerBase = 0x80000000;
  static constexpr Addr kScratchBase = 0x80001000;
  bus::OpbBus opb_;
  bus::OpbTimer* timer_ = nullptr;
};

TEST_F(OpbIntegration, SoftwareReadsElapsedCycles) {
  TestMachine m(
      "  li r5, 0x80000000\n"
      "  lwi r3, r5, 0\n"      // t0
      "  li r7, 10\n"
      "loop:\n"
      "  addik r7, r7, -1\n"
      "  bnei r7, loop\n"
      "  lwi r4, r5, 0\n"      // t1
      "  rsub r6, r3, r4\n"    // elapsed = t1 - t0
      "  halt\n");
  attach_timer(m);
  ASSERT_EQ(run_with_timer(m), Event::kHalted);
  // The measured interval covers the loop (10 iterations: 9 taken bnei
  // at 3 + 1 not-taken at 1 + 10 addik) plus the surrounding li and the
  // second timer read itself; it must be positive and plausible.
  const Word elapsed = m.cpu.reg(6);
  EXPECT_GT(elapsed, 30u);
  EXPECT_LT(elapsed, 80u);
}

TEST_F(OpbIntegration, TimerMeasurementMatchesIssCycles) {
  TestMachine m(
      "  li r5, 0x80000000\n"
      "  lwi r3, r5, 0\n"
      "  mul r6, r6, r6\n"     // the measured region: exactly one mul
      "  lwi r4, r5, 0\n"
      "  rsub r6, r3, r4\n"
      "  halt\n");
  attach_timer(m);
  run_with_timer(m);
  // Between the two timer samples: the mul (3) plus the second load's
  // own cycles up to the point the bus returns the count (2 + waits).
  const Word elapsed = m.cpu.reg(6);
  EXPECT_EQ(elapsed, 3u + 2u + bus::OpbBus::kBusWaitStates);
}

TEST_F(OpbIntegration, ScratchpadSharedBetweenRuns) {
  TestMachine writer(
      "  li r5, 0x80001000\n"
      "  li r3, 1234\n"
      "  swi r3, r5, 8\n"
      "  halt\n");
  attach_timer(writer);
  run_with_timer(writer);
  // A second program on the same bus sees the peripheral state (the bus
  // and its devices outlive processor resets, like real hardware).
  TestMachine reader(
      "  li r5, 0x80001000\n"
      "  lwi r4, r5, 8\n"
      "  halt\n");
  reader.cpu.attach_opb(&opb_);
  reader.run();
  EXPECT_EQ(reader.cpu.reg(4), 1234u);
}

TEST_F(OpbIntegration, ClearResetsTimer) {
  TestMachine m(
      "  li r5, 0x80000000\n"
      "  swi r0, r5, 0\n"      // clear
      "  lwi r4, r5, 0\n"      // read immediately after
      "  halt\n");
  attach_timer(m);
  timer_->tick(100000);  // pre-existing count
  run_with_timer(m);
  // Only the cycles between the clear and the read remain.
  EXPECT_LT(m.cpu.reg(4), 10u);
}

}  // namespace
}  // namespace mbcosim::iss
