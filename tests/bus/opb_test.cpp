// OPB bus model unit tests: decode, wait states, stock peripherals.
#include "bus/opb_bus.hpp"

#include <gtest/gtest.h>

namespace mbcosim::bus {
namespace {

TEST(OpbBus, DecodeAndAccess) {
  OpbBus bus;
  bus.map("regs", 0x1000, 64, std::make_unique<OpbScratchpad>(16));
  EXPECT_TRUE(bus.decodes(0x1000));
  EXPECT_TRUE(bus.decodes(0x103C));
  EXPECT_FALSE(bus.decodes(0x1040));
  EXPECT_FALSE(bus.decodes(0x0FFC));

  const BusResponse w = bus.write(0x1008, 77);
  EXPECT_TRUE(w.ok);
  const BusResponse r = bus.read(0x1008);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.data, 77u);
  EXPECT_EQ(r.wait_states, OpbBus::kBusWaitStates);
}

TEST(OpbBus, UnmappedAccessFails) {
  OpbBus bus;
  EXPECT_FALSE(bus.read(0x2000).ok);
  EXPECT_FALSE(bus.write(0x2000, 1).ok);
}

TEST(OpbBus, RejectsOverlappingRegions) {
  OpbBus bus;
  bus.map("a", 0x1000, 64, std::make_unique<OpbScratchpad>(16));
  EXPECT_THROW(
      bus.map("b", 0x1020, 64, std::make_unique<OpbScratchpad>(16)),
      SimError);
  // Adjacent is fine.
  EXPECT_NO_THROW(
      bus.map("c", 0x1040, 64, std::make_unique<OpbScratchpad>(16)));
}

TEST(OpbBus, RejectsBadRegions) {
  OpbBus bus;
  EXPECT_THROW(bus.map("odd", 0x1001, 64, std::make_unique<OpbScratchpad>(16)),
               SimError);
  EXPECT_THROW(bus.map("empty", 0x1000, 0, std::make_unique<OpbScratchpad>(16)),
               SimError);
  EXPECT_THROW(bus.map("null", 0x1000, 64, nullptr), SimError);
}

TEST(OpbBus, SubWordAddressesAlignToWord) {
  OpbBus bus;
  bus.map("regs", 0, 64, std::make_unique<OpbScratchpad>(16));
  bus.write(0x4, 0xAABBCCDD);
  EXPECT_EQ(bus.read(0x5).data, 0xAABBCCDDu);
  EXPECT_EQ(bus.read(0x7).data, 0xAABBCCDDu);
}

TEST(OpbBus, TransactionCounter) {
  OpbBus bus;
  bus.map("regs", 0, 64, std::make_unique<OpbScratchpad>(16));
  bus.write(0, 1);
  bus.read(0);
  bus.read(4);
  EXPECT_EQ(bus.transactions(), 3u);
  bus.read(0x5000);  // unmapped: not counted
  EXPECT_EQ(bus.transactions(), 3u);
}

TEST(OpbTimer, CountsAndClears) {
  OpbBus bus;
  auto timer = std::make_unique<OpbTimer>();
  OpbTimer* raw = timer.get();
  bus.map("timer", 0x100, 8, std::move(timer));
  raw->tick(1000);
  EXPECT_EQ(bus.read(0x100).data, 1000u);
  bus.write(0x100, 0);  // any write clears
  EXPECT_EQ(bus.read(0x100).data, 0u);
}

TEST(OpbTimer, HighWord) {
  OpbTimer timer;
  timer.tick(0x1'0000'0005ull);
  EXPECT_EQ(timer.read(0), 5u);
  EXPECT_EQ(timer.read(4), 1u);
}

}  // namespace
}  // namespace mbcosim::bus
