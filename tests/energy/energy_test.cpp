// Tests for the rapid energy-estimation extension (paper Section V).
#include "energy/energy_model.hpp"

#include <gtest/gtest.h>

#include "apps/cordic/cordic_app.hpp"
#include "apps/cordic/cordic_hw.hpp"
#include "apps/matmul/matmul_app.hpp"

namespace mbcosim::energy {
namespace {

TEST(ProcessorEnergy, InstructionMixDecomposition) {
  iss::CpuStats stats;
  stats.instructions = 100;
  stats.loads = 10;
  stats.stores = 5;
  stats.multiplies = 20;
  stats.branches = 15;
  stats.fsl_reads = 3;
  stats.fsl_writes = 2;
  stats.fsl_stall_cycles = 50;
  const EnergyParams p;
  // 45 plain ALU instructions remain.
  const double expected = 45 * p.alu_nj + 20 * p.multiply_nj +
                          10 * p.load_nj + 5 * p.store_nj + 15 * p.branch_nj +
                          5 * p.fsl_nj + 50 * p.stall_nj;
  EXPECT_DOUBLE_EQ(processor_energy_nj(stats, p), expected);
}

TEST(ProcessorEnergy, EmptyRunIsFree) {
  EXPECT_DOUBLE_EQ(processor_energy_nj(iss::CpuStats{}), 0.0);
}

TEST(ProcessorEnergy, MultiplyCostsMoreThanAlu) {
  iss::CpuStats alu_run;
  alu_run.instructions = 100;
  iss::CpuStats mul_run;
  mul_run.instructions = 100;
  mul_run.multiplies = 100;
  EXPECT_GT(processor_energy_nj(mul_run), processor_energy_nj(alu_run));
}

TEST(PeripheralEnergy, ScalesWithActiveCyclesAndSize) {
  const auto small = apps::cordic::build_cordic_pipeline(2);
  const auto large = apps::cordic::build_cordic_pipeline(8);
  const double small_e = peripheral_energy_nj(*small.model, 1000);
  const double large_e = peripheral_energy_nj(*large.model, 1000);
  EXPECT_GT(large_e, small_e);
  EXPECT_DOUBLE_EQ(peripheral_energy_nj(*small.model, 2000), 2 * small_e);
  EXPECT_DOUBLE_EQ(peripheral_energy_nj(*small.model, 0), 0.0);
}

TEST(StaticEnergy, ScalesWithAreaAndTime) {
  ResourceVec area{1000, 0, 0};
  const double one_ms_cycles = 50'000;  // 1 ms at 50 MHz
  const double e = static_energy_nj(area, Cycle(one_ms_cycles));
  // 1000 slices * 18 nW = 18 uW; over 1 ms = 18 nJ.
  EXPECT_NEAR(e, 18.0, 1e-9);
  EXPECT_DOUBLE_EQ(static_energy_nj(ResourceVec{}, 1000), 0.0);
}

TEST(EnergyReport, TotalsAndPower) {
  EnergyReport report;
  report.processor_nj = 1000;
  report.peripheral_nj = 500;
  report.static_nj = 100;
  report.cycles = 50'000;  // 1 ms
  EXPECT_DOUBLE_EQ(report.total_nj(), 1600.0);
  EXPECT_DOUBLE_EQ(report.total_uj(), 1.6);
  // 1600 nJ over 1 ms = 1.6 mW.
  EXPECT_NEAR(report.average_power_mw(), 1.6, 1e-9);
  EXPECT_NE(report.to_string().find("uJ"), std::string::npos);
}

TEST(EnergyIntegration, CordicRunsPopulateEnergy) {
  auto [x, y] = apps::cordic::make_cordic_dataset(10, 77);
  apps::cordic::CordicRunConfig config;
  config.iterations = 24;
  config.items = 10;
  for (unsigned p : {0u, 4u}) {
    config.num_pes = p;
    const auto result = apps::cordic::run_cordic(config, x, y);
    EXPECT_GT(result.energy.total_nj(), 0.0) << "P=" << p;
    EXPECT_EQ(result.energy.cycles, result.cycles);
    if (p == 0) {
      EXPECT_DOUBLE_EQ(result.energy.peripheral_nj, 0.0);
    } else {
      EXPECT_GT(result.energy.peripheral_nj, 0.0);
    }
  }
}

TEST(EnergyIntegration, HardwareReducesEnergyForCordic) {
  // The design-space insight the extension enables: P = 4 finishes so
  // much earlier than pure software that it wins on energy too, despite
  // the extra powered fabric.
  auto [x, y] = apps::cordic::make_cordic_dataset(20, 78);
  apps::cordic::CordicRunConfig sw;
  sw.num_pes = 0;
  sw.iterations = 24;
  sw.items = 20;
  apps::cordic::CordicRunConfig hw = sw;
  hw.num_pes = 4;
  const auto sw_result = apps::cordic::run_cordic(sw, x, y);
  const auto hw_result = apps::cordic::run_cordic(hw, x, y);
  EXPECT_LT(hw_result.energy.total_nj(), sw_result.energy.total_nj());
}

TEST(EnergyIntegration, MatmulRunsPopulateEnergy) {
  const auto a = apps::matmul::make_matrix(8, 1);
  const auto b = apps::matmul::make_matrix(8, 2);
  apps::matmul::MatmulRunConfig config{8, 4};
  const auto result = apps::matmul::run_matmul(config, a, b);
  EXPECT_GT(result.energy.peripheral_nj, 0.0);
  EXPECT_GT(result.energy.processor_nj, 0.0);
  EXPECT_GT(result.energy.static_nj, 0.0);
}

TEST(EnergyParams, CustomCharacterization) {
  iss::CpuStats stats;
  stats.instructions = 10;
  EnergyParams cheap;
  cheap.alu_nj = 0.1;
  EnergyParams expensive;
  expensive.alu_nj = 10.0;
  EXPECT_LT(processor_energy_nj(stats, cheap),
            processor_energy_nj(stats, expensive));
}

}  // namespace
}  // namespace mbcosim::energy
