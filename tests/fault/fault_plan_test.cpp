// FaultPlan: spec parsing, validation matrix, seed-derived parameters
// and the determinism of PlanSpace sampling — the contracts a Monte
// Carlo campaign's reproducibility rests on.
#include <bit>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"

namespace mbcosim::fault {
namespace {

TEST(FaultPlanParse, MemoryBitFlipRoundTrips) {
  const auto parsed = parse_plan("site=mem,mode=bitflip,cycle=1000,addr=0x120");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const FaultPlan& plan = parsed.value();
  EXPECT_EQ(plan.site, FaultSite::kMemory);
  EXPECT_EQ(plan.mode, FaultMode::kBitFlip);
  EXPECT_EQ(plan.trigger, TriggerKind::kCycle);
  EXPECT_EQ(plan.trigger_value, 1000u);
  EXPECT_EQ(plan.address, 0x120u);
  // to_spec round-trips to an equivalent plan.
  const auto again = parse_plan(plan.to_spec());
  ASSERT_TRUE(again.ok()) << again.error();
  EXPECT_EQ(again.value().site, plan.site);
  EXPECT_EQ(again.value().mode, plan.mode);
  EXPECT_EQ(again.value().trigger_value, plan.trigger_value);
  EXPECT_EQ(again.value().address, plan.address);
}

TEST(FaultPlanParse, FslAndOpbSpecs) {
  const auto fsl = parse_plan("site=fsl-to-hw,mode=drop,count=3,chan=2");
  ASSERT_TRUE(fsl.ok()) << fsl.error();
  EXPECT_EQ(fsl.value().site, FaultSite::kFslToHw);
  EXPECT_EQ(fsl.value().mode, FaultMode::kDropWord);
  EXPECT_EQ(fsl.value().trigger, TriggerKind::kCount);
  EXPECT_EQ(fsl.value().channel, 2u);

  const auto opb = parse_plan("site=opb,mode=timeout,count=1");
  ASSERT_TRUE(opb.ok()) << opb.error();
  EXPECT_EQ(opb.value().site, FaultSite::kOpb);
  EXPECT_EQ(opb.value().mode, FaultMode::kBusTimeout);

  const auto reg =
      parse_plan("site=reg,mode=multibitflip,pc=0x48,reg=5,mask=0x11");
  ASSERT_TRUE(reg.ok()) << reg.error();
  EXPECT_EQ(reg.value().trigger, TriggerKind::kPc);
  EXPECT_EQ(reg.value().trigger_value, 0x48u);
  EXPECT_EQ(reg.value().reg, 5u);
  EXPECT_EQ(reg.value().effective_mask(), 0x11u);  // explicit mask wins
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_plan("site=nowhere,mode=bitflip,cycle=1").ok());
  EXPECT_FALSE(parse_plan("site=mem,mode=wat,cycle=1").ok());
  EXPECT_FALSE(parse_plan("site=mem,mode=bitflip").ok());  // no trigger
  EXPECT_FALSE(parse_plan("site=mem,mode=bitflip,cycle=1,count=2").ok());
  EXPECT_FALSE(parse_plan("site=mem,mode=bitflip,cycle=banana").ok());
  EXPECT_FALSE(parse_plan("site=mem,bitflip,cycle=1").ok());  // not k=v
  EXPECT_FALSE(parse_plan("site=mem,mode=bitflip,cycle=1,wat=1").ok());
  EXPECT_FALSE(parse_plan("site=reg,mode=bitflip,cycle=1,reg=32").ok());
  EXPECT_FALSE(parse_plan("site=fsl-to-hw,mode=drop,count=1,chan=8").ok());
}

TEST(FaultPlanValidate, SiteModeTriggerMatrix) {
  FaultPlan plan;
  plan.site = FaultSite::kMemory;
  plan.mode = FaultMode::kDropWord;  // stream mode on a memory site
  plan.trigger = TriggerKind::kCycle;
  plan.trigger_value = 10;
  EXPECT_FALSE(validate_plan(plan).ok);

  plan.mode = FaultMode::kBitFlip;
  EXPECT_TRUE(validate_plan(plan).ok);
  plan.trigger = TriggerKind::kCount;  // state flips cannot count
  EXPECT_FALSE(validate_plan(plan).ok);

  plan.site = FaultSite::kFslFromHw;
  plan.mode = FaultMode::kStuckFull;
  plan.trigger = TriggerKind::kCount;  // stuck flags cannot count
  EXPECT_FALSE(validate_plan(plan).ok);
  plan.trigger = TriggerKind::kCycle;
  EXPECT_TRUE(validate_plan(plan).ok);

  plan.mode = FaultMode::kCorruptWord;
  plan.trigger = TriggerKind::kPc;  // stream faults cannot pc-trigger
  EXPECT_FALSE(validate_plan(plan).ok);

  plan.site = FaultSite::kOpb;
  plan.mode = FaultMode::kBitFlip;  // not a bus mode
  plan.trigger = TriggerKind::kCycle;
  EXPECT_FALSE(validate_plan(plan).ok);
  plan.mode = FaultMode::kBusError;
  EXPECT_TRUE(validate_plan(plan).ok);

  plan.site = FaultSite::kRegister;
  plan.mode = FaultMode::kBitFlip;
  plan.reg = 0;  // r0 is hardwired zero
  EXPECT_FALSE(validate_plan(plan).ok);

  plan.reg = 3;
  plan.trigger = TriggerKind::kCycle;
  plan.trigger_value = 0;  // cycle triggers are 1-based
  EXPECT_FALSE(validate_plan(plan).ok);
}

TEST(FaultPlanMask, DerivedMasksAreDeterministicAndShaped) {
  FaultPlan plan;
  plan.mode = FaultMode::kBitFlip;
  plan.seed = 42;
  const Word first = plan.effective_mask();
  EXPECT_EQ(first, plan.effective_mask());  // pure function of the seed
  EXPECT_EQ(std::popcount(first), 1);

  plan.mode = FaultMode::kMultiBitFlip;
  const Word multi = plan.effective_mask();
  EXPECT_GE(std::popcount(multi), 2);
  EXPECT_LE(std::popcount(multi), 4);

  plan.seed = 43;
  EXPECT_NE(plan.effective_mask(), multi);  // different seed, new choice
}

TEST(PlanSpaceSample, SameSeedSamplesIdenticalPlans) {
  PlanSpace space;
  space.mem_base = 0x100;
  space.mem_bytes = 256;
  space.registers = 32;
  space.to_hw_channels = {0, 1};
  space.from_hw_channels = {0};
  space.opb = true;
  space.max_trigger_cycle = 5000;

  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 200; ++i) {
    const FaultPlan pa = sample_plan(a, space);
    const FaultPlan pb = sample_plan(b, space);
    EXPECT_EQ(pa.to_spec(), pb.to_spec());
    EXPECT_EQ(pa.seed, pb.seed);
    // Every sampled plan must be internally consistent.
    const Status valid = validate_plan(pa);
    EXPECT_TRUE(valid.ok) << valid.message << " for " << pa.to_spec();
  }
}

TEST(PlanSpaceSample, EmptySpaceThrows) {
  PlanSpace space;  // nothing enabled
  space.registers = 0;
  space.max_trigger_cycle = 100;
  Rng rng(1);
  EXPECT_THROW((void)sample_plan(rng, space), SimError);

  PlanSpace no_window;
  no_window.mem_bytes = 64;
  no_window.max_trigger_cycle = 0;
  EXPECT_THROW((void)sample_plan(rng, no_window), SimError);
}

}  // namespace
}  // namespace mbcosim::fault
