// Injector + component fault hooks: FSL stream/stuck faults, OPB error
// and timeout responses, memory/register flips (including the predecode
// invalidation on a text hit), and the zero-cost contract — a system
// with no plan armed is bit-identical to one that never heard of the
// fault subsystem.
#include <gtest/gtest.h>

#include "bus/opb_bus.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fsl/fsl_channel.hpp"
#include "fsl/fsl_hub.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::fault {
namespace {

// -- FSL channel stream faults ----------------------------------------------

TEST(FslChannelFault, CorruptXorsOneWordThenPassesThrough) {
  fsl::FslChannel channel(4, "t");
  fsl::FslFaultControls controls;
  controls.stream = fsl::FslFaultControls::Stream::kCorrupt;
  controls.mask = 0xff;
  controls.countdown = 1;  // let one word through first
  channel.arm_fault(controls);

  ASSERT_TRUE(channel.try_write(0x100, false));
  ASSERT_TRUE(channel.try_write(0x200, false));  // the corrupted one
  ASSERT_TRUE(channel.try_write(0x300, false));
  EXPECT_EQ(channel.try_read()->data, 0x100u);
  EXPECT_EQ(channel.try_read()->data, 0x2ffu);   // 0x200 ^ 0xff
  EXPECT_EQ(channel.try_read()->data, 0x300u);   // one-shot: back to normal
}

TEST(FslChannelFault, DropLosesTheWordButAcksTheHandshake) {
  fsl::FslChannel channel(4, "t");
  fsl::FslFaultControls controls;
  controls.stream = fsl::FslFaultControls::Stream::kDrop;
  channel.arm_fault(controls);

  ASSERT_TRUE(channel.try_write(0xdead, false));  // writer sees success
  EXPECT_EQ(channel.occupancy(), 0u);             // but nothing arrived
  EXPECT_EQ(channel.total_writes(), 1u);
  ASSERT_TRUE(channel.try_write(0xbeef, false));
  EXPECT_EQ(channel.try_read()->data, 0xbeefu);
}

TEST(FslChannelFault, DuplicateEnqueuesTwice) {
  fsl::FslChannel channel(4, "t");
  fsl::FslFaultControls controls;
  controls.stream = fsl::FslFaultControls::Stream::kDuplicate;
  channel.arm_fault(controls);

  ASSERT_TRUE(channel.try_write(7, true));
  EXPECT_EQ(channel.occupancy(), 2u);
  EXPECT_EQ(channel.try_read()->data, 7u);
  EXPECT_EQ(channel.try_read()->data, 7u);
}

TEST(FslChannelFault, FlipControlInvertsTheControlBit) {
  fsl::FslChannel channel(4, "t");
  fsl::FslFaultControls controls;
  controls.stream = fsl::FslFaultControls::Stream::kFlipControl;
  channel.arm_fault(controls);

  ASSERT_TRUE(channel.try_write(1, true));
  EXPECT_FALSE(channel.try_read()->control);
}

TEST(FslChannelFault, StuckFlagsOverrideTheRealState) {
  fsl::FslChannel channel(2, "t");
  fsl::FslFaultControls stuck_full;
  stuck_full.stuck_full = true;
  channel.arm_fault(stuck_full);
  EXPECT_TRUE(channel.full());                // despite being empty
  EXPECT_FALSE(channel.try_write(1, false));  // every write refused

  channel.clear_fault();
  ASSERT_TRUE(channel.try_write(1, false));
  fsl::FslFaultControls stuck_empty;
  stuck_empty.stuck_empty = true;
  channel.arm_fault(stuck_empty);
  EXPECT_FALSE(channel.exists());  // the queued word is invisible
  EXPECT_FALSE(channel.try_read().has_value());
  channel.clear_fault();
  EXPECT_EQ(channel.try_read()->data, 1u);  // still there after clearing
}

TEST(FslChannelFault, CorruptEntryHitsQueuedWordInPlace) {
  fsl::FslChannel channel(4, "t");
  ASSERT_TRUE(channel.try_write(0xf0, true));
  EXPECT_TRUE(channel.corrupt_entry(0, 0x0f, true));
  const auto entry = channel.try_read();
  EXPECT_EQ(entry->data, 0xffu);
  EXPECT_FALSE(entry->control);
  EXPECT_FALSE(channel.corrupt_entry(5, 1, false));  // out of range: masked
}

// -- OPB bus faults ---------------------------------------------------------

TEST(OpbBusFault, ErrorAndTimeoutFailOneTransaction) {
  bus::OpbBus bus;
  bus.map("scratch", 0xc000'0000, 64,
          std::make_unique<bus::OpbScratchpad>(16));
  ASSERT_TRUE(bus.write(0xc000'0000, 42).ok);

  bus::OpbFaultControls controls;
  controls.mode = bus::OpbFaultControls::Mode::kError;
  controls.countdown = 1;  // fire on the second decoded transaction
  bus.arm_fault(controls);
  EXPECT_TRUE(bus.read(0xc000'0000).ok);  // passes through
  const bus::BusResponse errored = bus.read(0xc000'0000);
  EXPECT_FALSE(errored.ok);
  EXPECT_EQ(errored.wait_states, bus::OpbBus::kBusWaitStates);
  EXPECT_TRUE(bus.read(0xc000'0000).ok);  // one-shot

  bus.arm_fault({bus::OpbFaultControls::Mode::kTimeout, 0, false});
  const bus::BusResponse timed_out = bus.write(0xc000'0000, 1);
  EXPECT_FALSE(timed_out.ok);
  EXPECT_EQ(timed_out.wait_states, bus::OpbBus::kTimeoutWaitStates);
}

// -- point-triggered injections through SimSystem ---------------------------

constexpr const char* kAddLoop = R"(
  start:
    la   r5, input
    lwi  r3, r5, 0
  flip_me:
    addik r3, r3, 1
    la   r6, output
    swi  r3, r6, 0
    halt
  input:  .word 100
  unused: .word 0
  output: .space 4
)";

sim::SimSystem build_or_die(sim::SimSystem::Builder& builder) {
  auto built = builder.build();
  if (!built.ok()) throw SimError(built.error());
  return std::move(built).value();
}

TEST(Injector, RegisterFlipAtPcChangesTheResult) {
  auto system = build_or_die(sim::SimSystem::Builder().program(kAddLoop));
  FaultPlan plan;
  plan.site = FaultSite::kRegister;
  plan.mode = FaultMode::kBitFlip;
  plan.trigger = TriggerKind::kPc;
  plan.trigger_value = system.symbol("flip_me");  // the addik
  plan.reg = 3;
  plan.mask = 0x1000;
  ASSERT_TRUE(system.arm_fault(plan).ok);
  EXPECT_EQ(system.run(), core::StopReason::kHalted);
  ASSERT_NE(system.fault_injector(), nullptr);
  EXPECT_TRUE(system.fault_injector()->applied());
  EXPECT_EQ(system.word("output"), (100u ^ 0x1000u) + 1u);
}

TEST(Injector, MemoryFlipOnInputDataPropagates) {
  auto system = build_or_die(sim::SimSystem::Builder().program(kAddLoop));
  FaultPlan plan;
  plan.site = FaultSite::kMemory;
  plan.mode = FaultMode::kBitFlip;
  plan.trigger = TriggerKind::kCycle;
  plan.trigger_value = 1;  // before the load
  plan.address = system.symbol("input");
  plan.mask = 0x8;
  ASSERT_TRUE(system.arm_fault(plan).ok);
  EXPECT_EQ(system.run(), core::StopReason::kHalted);
  EXPECT_EQ(system.word("output"), 109u);  // (100 ^ 8) + 1
}

TEST(Injector, MemoryFlipOnTextInvalidatesPredecode) {
  // Flip the addik instruction word itself: with the predecode cache hot
  // this only takes effect if the injection invalidates the line (the
  // SMC path). An `addik r3, r3, 1` with bit 1 flipped in the immediate
  // becomes `addik r3, r3, 3`.
  auto system = build_or_die(sim::SimSystem::Builder().program(kAddLoop));
  FaultPlan plan;
  plan.site = FaultSite::kMemory;
  plan.mode = FaultMode::kBitFlip;
  plan.trigger = TriggerKind::kCycle;
  plan.trigger_value = 1;
  plan.address = system.symbol("flip_me");  // the addik's own word
  plan.mask = 0x2;
  ASSERT_TRUE(system.arm_fault(plan).ok);
  EXPECT_EQ(system.run(), core::StopReason::kHalted);
  EXPECT_EQ(system.word("output"), 103u);  // 100 + 3, not 100 + 1
}

TEST(Injector, FlipOutsideMemoryIsMaskedByConstruction) {
  auto system = build_or_die(sim::SimSystem::Builder().program(kAddLoop));
  FaultPlan plan;
  plan.site = FaultSite::kMemory;
  plan.mode = FaultMode::kBitFlip;
  plan.trigger = TriggerKind::kCycle;
  plan.trigger_value = 1;
  plan.address = 0x7fff'fff0;  // far outside the 64 KiB LMB
  ASSERT_TRUE(system.arm_fault(plan).ok);
  EXPECT_EQ(system.run(), core::StopReason::kHalted);
  ASSERT_NE(system.fault_injector(), nullptr);
  EXPECT_FALSE(system.fault_injector()->applied());
  EXPECT_NE(system.fault_injector()->detail().find("masked"),
            std::string::npos);
  EXPECT_EQ(system.word("output"), 101u);  // untouched execution
}

TEST(Injector, NeverFiringPlanLeavesRunBitIdentical) {
  // Baseline without any fault subsystem involvement.
  auto golden = build_or_die(sim::SimSystem::Builder().program(kAddLoop));
  ASSERT_EQ(golden.run(), core::StopReason::kHalted);
  const core::CoSimStats golden_stats = golden.stats();

  // A plan triggered far past the halt: armed, never fires.
  FaultPlan plan;
  plan.site = FaultSite::kMemory;
  plan.mode = FaultMode::kBitFlip;
  plan.trigger = TriggerKind::kCycle;
  plan.trigger_value = 1'000'000;
  plan.address = 0;
  auto armed = build_or_die(
      sim::SimSystem::Builder().program(kAddLoop).fault(plan));
  ASSERT_EQ(armed.run(), core::StopReason::kHalted);
  const core::CoSimStats armed_stats = armed.stats();

  EXPECT_EQ(armed_stats.cycles, golden_stats.cycles);
  EXPECT_EQ(armed_stats.instructions, golden_stats.instructions);
  EXPECT_EQ(armed_stats.fsl_stall_cycles, golden_stats.fsl_stall_cycles);
  EXPECT_EQ(armed.word("output"), golden.word("output"));
  ASSERT_NE(armed.fault_injector(), nullptr);
  EXPECT_FALSE(armed.fault_injector()->applied());
}

TEST(Injector, BuilderRejectsInconsistentPlan) {
  FaultPlan plan;
  plan.site = FaultSite::kOpb;
  plan.mode = FaultMode::kBitFlip;  // not a bus mode
  plan.trigger = TriggerKind::kCycle;
  plan.trigger_value = 1;
  auto built =
      sim::SimSystem::Builder().program(kAddLoop).fault(plan).build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.error().find("buserror or timeout"), std::string::npos);
}

}  // namespace
}  // namespace mbcosim::fault
