// Experiment classification (all four outcome classes against one small
// design) and campaign determinism: the same seed produces a byte-
// identical JSON report at any worker count.
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "bus/opb_bus.hpp"
#include "fault/campaign.hpp"
#include "fault/experiment.hpp"
#include "fault/fault_plan.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::fault {
namespace {

// Software + one OPB scratchpad. The `input` flag guards a spin loop so
// a single data-bit upset can produce a hang; the OPB read gives bus
// faults an architectural victim.
constexpr const char* kVictimSource = R"(
  start:
    la   r5, input
    lwi  r3, r5, 0
    beqi r3, hang
    li   r7, 0xc0000000
    lwi  r4, r7, 0
    addk r3, r3, r4
    addik r3, r3, 1
    la   r6, output
    swi  r3, r6, 0
    halt
  hang:
    addik r4, r4, 1
    bri  hang
  input:  .word 1
  unused: .word 0
  output: .space 4
)";

constexpr Cycle kBudget = 20'000;

Expected<sim::SimSystem> victim_factory(const FaultPlan* plan) {
  sim::SimSystem::Builder builder;
  auto opb = std::make_unique<bus::OpbBus>();
  opb->map("scratch", 0xc000'0000, 64, std::make_unique<bus::OpbScratchpad>(8));
  builder.program(kVictimSource).opb(std::move(opb));
  if (plan != nullptr) builder.fault(*plan);
  return builder.build();
}

std::vector<Word> victim_outputs(sim::SimSystem& system) {
  return {system.word("output")};
}

GoldenReference golden_or_die() {
  auto golden = run_golden(victim_factory, victim_outputs, kBudget);
  if (!golden.ok()) throw SimError(golden.error());
  return std::move(golden).value();
}

TEST(Experiment, GoldenRunHaltsWithTheExpectedOutput) {
  const GoldenReference golden = golden_or_die();
  EXPECT_EQ(golden.stop, core::StopReason::kHalted);
  ASSERT_EQ(golden.outputs.size(), 1u);
  EXPECT_EQ(golden.outputs[0], 2u);  // input 1 + scratchpad 0 + 1
  EXPECT_GT(golden.cycles, 0u);
}

TEST(Experiment, ClassifiesMasked) {
  const GoldenReference golden = golden_or_die();
  FaultPlan flip;
  flip.site = FaultSite::kMemory;
  flip.mode = FaultMode::kBitFlip;
  flip.trigger = TriggerKind::kCycle;
  flip.trigger_value = 1;
  flip.mask = 0x1;
  {
    auto system = victim_factory(nullptr);
    ASSERT_TRUE(system.ok());
    flip.address = system.value().symbol("unused");
  }
  const ExperimentResult result =
      run_experiment(victim_factory, victim_outputs, flip, golden, kBudget);
  EXPECT_EQ(result.outcome, Outcome::kMasked);
  EXPECT_EQ(result.stop, core::StopReason::kHalted);
  EXPECT_TRUE(result.injected);
  EXPECT_TRUE(result.error.empty());
}

TEST(Experiment, ClassifiesSdcHangAndTrap) {
  const GoldenReference golden = golden_or_die();
  Addr input_addr = 0;
  {
    auto system = victim_factory(nullptr);
    ASSERT_TRUE(system.ok());
    input_addr = system.value().symbol("input");
  }

  FaultPlan sdc;
  sdc.site = FaultSite::kMemory;
  sdc.mode = FaultMode::kBitFlip;
  sdc.trigger = TriggerKind::kCycle;
  sdc.trigger_value = 1;
  sdc.address = input_addr;
  sdc.mask = 0x4;  // input 1 -> 5: still nonzero, wrong value
  const ExperimentResult sdc_result =
      run_experiment(victim_factory, victim_outputs, sdc, golden, kBudget);
  EXPECT_EQ(sdc_result.outcome, Outcome::kSdc);
  EXPECT_NE(sdc_result.detail.find("output[0]"), std::string::npos);

  FaultPlan hang = sdc;
  hang.mask = 0x1;  // input 1 -> 0: the guard sends execution to the spin
  const ExperimentResult hang_result =
      run_experiment(victim_factory, victim_outputs, hang, golden, kBudget);
  EXPECT_EQ(hang_result.outcome, Outcome::kHang);
  EXPECT_EQ(hang_result.stop, core::StopReason::kCycleLimit);
  EXPECT_NE(hang_result.detail.find("cycle budget"), std::string::npos);

  const auto trap = parse_plan("site=opb,mode=buserror,count=0");
  ASSERT_TRUE(trap.ok()) << trap.error();
  const ExperimentResult trap_result = run_experiment(
      victim_factory, victim_outputs, trap.value(), golden, kBudget);
  EXPECT_EQ(trap_result.outcome, Outcome::kTrap);
  EXPECT_EQ(trap_result.stop, core::StopReason::kIllegal);
}

TEST(Experiment, FactoryFailureIsReportedNotThrown) {
  const GoldenReference golden = golden_or_die();
  const SystemFactory broken = [](const FaultPlan* plan)
      -> Expected<sim::SimSystem> {
    if (plan != nullptr) {
      return Expected<sim::SimSystem>::failure("synthetic build failure");
    }
    return victim_factory(nullptr);
  };
  FaultPlan plan;
  plan.trigger = TriggerKind::kCycle;
  plan.trigger_value = 1;
  const ExperimentResult result =
      run_experiment(broken, victim_outputs, plan, golden, kBudget);
  EXPECT_EQ(result.error, "synthetic build failure");
}

CampaignConfig small_campaign(unsigned threads) {
  CampaignConfig config;
  config.seed = 0xc0ffee;
  config.experiments = 30;
  config.threads = threads;
  config.max_cycles = kBudget;
  config.space.mem_base = 0;
  config.space.mem_bytes = 128;
  config.space.registers = 8;
  config.space.opb = true;
  config.space.max_trigger_cycle = 40;
  return config;
}

TEST(Campaign, ReportIsByteIdenticalAcrossWorkerCounts) {
  const auto serial =
      run_campaign(small_campaign(1), victim_factory, victim_outputs);
  ASSERT_TRUE(serial.ok()) << serial.error();
  const auto parallel =
      run_campaign(small_campaign(4), victim_factory, victim_outputs);
  ASSERT_TRUE(parallel.ok()) << parallel.error();
  EXPECT_EQ(serial.value().to_json(), parallel.value().to_json());

  // And across repeated runs at the same worker count.
  const auto again =
      run_campaign(small_campaign(4), victim_factory, victim_outputs);
  ASSERT_TRUE(again.ok()) << again.error();
  EXPECT_EQ(parallel.value().to_json(), again.value().to_json());
}

TEST(Campaign, ForkedReportIsByteIdenticalToUnforked) {
  // A late trigger window gives every cycle-triggered plan a long shared
  // fault-free prefix — the case fork-from-checkpoint accelerates. The
  // acceleration must be invisible in the report.
  CampaignConfig forked = small_campaign(4);
  forked.space.min_trigger_cycle = 20;
  forked.space.max_trigger_cycle = 60;
  CampaignConfig unforked = forked;
  unforked.fork = false;

  const auto fast = run_campaign(forked, victim_factory, victim_outputs);
  ASSERT_TRUE(fast.ok()) << fast.error();
  const auto slow = run_campaign(unforked, victim_factory, victim_outputs);
  ASSERT_TRUE(slow.ok()) << slow.error();
  EXPECT_EQ(fast.value().to_json(), slow.value().to_json());

  // The sampling window is honored: every cycle trigger landed in it.
  for (const ExperimentResult& row : fast.value().results) {
    if (row.plan.trigger != TriggerKind::kCycle) continue;
    EXPECT_GE(row.plan.trigger_value, 20u);
    EXPECT_LE(row.plan.trigger_value, 60u);
  }
}

TEST(Campaign, HistogramsAddUpAndEveryRowIsAccounted) {
  const auto report =
      run_campaign(small_campaign(2), victim_factory, victim_outputs);
  ASSERT_TRUE(report.ok()) << report.error();
  const CampaignReport& result = report.value();
  ASSERT_EQ(result.results.size(), 30u);
  u32 classified = 0;
  for (const Outcome outcome : {Outcome::kMasked, Outcome::kSdc,
                                Outcome::kHang, Outcome::kTrap}) {
    classified += result.total(outcome);
  }
  EXPECT_EQ(classified + result.build_failures, 30u);
  u32 by_site = 0;
  for (const auto& [site, counts] : result.by_site) {
    for (const u32 count : counts) by_site += count;
  }
  EXPECT_EQ(by_site, classified);
}

TEST(Campaign, GoldenFailureIsTheCampaignError) {
  const SystemFactory never_halts = [](const FaultPlan*)
      -> Expected<sim::SimSystem> {
    return sim::SimSystem::Builder().program("loop: addik r3, r3, 1\nbri loop\nhalt\n").build();
  };
  const auto report = run_campaign(small_campaign(1), never_halts,
                                   [](sim::SimSystem&) {
                                     return std::vector<Word>{};
                                   });
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().find("did not halt"), std::string::npos);
}

}  // namespace
}  // namespace mbcosim::fault
