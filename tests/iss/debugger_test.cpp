// Tests for the run-control front end (the mb-gdb analog), including its
// textual command interface.
#include "iss/debugger.hpp"

#include <gtest/gtest.h>

#include "iss/test_helpers.hpp"

namespace mbcosim::iss {
namespace {

using testing::TestMachine;

TEST(Debugger, BreakpointStopsExecution) {
  TestMachine m(
      "  li r3, 1\n"     // words at 0, 4
      "  li r4, 2\n"     // words at 8, 12
      "  halt\n");
  Debugger dbg(m.cpu);
  dbg.add_breakpoint(8);
  EXPECT_EQ(dbg.cont(), StopCause::kBreakpoint);
  EXPECT_EQ(m.cpu.pc(), 8u);
  EXPECT_EQ(m.cpu.reg(3), 1u);
  EXPECT_EQ(m.cpu.reg(4), 0u);
  dbg.remove_breakpoint(8);
  EXPECT_EQ(dbg.cont(), StopCause::kHalted);
  EXPECT_EQ(m.cpu.reg(4), 2u);
}

TEST(Debugger, CycleLimitStops) {
  TestMachine m("loop: bri loop2\nloop2: bri loop\n");
  Debugger dbg(m.cpu);
  EXPECT_EQ(dbg.cont(30), StopCause::kCycleLimit);
}

TEST(Debugger, StepOverStallsRetries) {
  TestMachine m("get r3, rfsl0\nhalt\n");
  Debugger dbg(m.cpu);
  m.hub.from_hw(0).try_write(5, false);
  const StepResult r = dbg.step_over_stalls();
  EXPECT_EQ(r.event, Event::kRetired);
  EXPECT_EQ(m.cpu.reg(3), 5u);
}

TEST(Debugger, FslStallReportedToCaller) {
  TestMachine m("get r3, rfsl0\nhalt\n");
  Debugger dbg(m.cpu);
  EXPECT_EQ(dbg.cont(100), StopCause::kFslStalled);
}

TEST(DebuggerCommands, RegisterAccess) {
  TestMachine m("halt\n");
  Debugger dbg(m.cpu);
  EXPECT_EQ(dbg.command("setreg r5 0x2a"), "ok");
  EXPECT_EQ(dbg.command("reg r5"), "0x2a");
  EXPECT_EQ(dbg.command("reg 5"), "0x2a");
  EXPECT_NE(dbg.command("reg r32").find("error"), std::string::npos);
}

TEST(DebuggerCommands, MemoryAccess) {
  TestMachine m("halt\n");
  Debugger dbg(m.cpu);
  EXPECT_EQ(dbg.command("setmem 0x100 0xdeadbeef"), "ok");
  EXPECT_EQ(dbg.command("mem 0x100"), "0xdeadbeef");
  EXPECT_NE(dbg.command("mem 0xFFFFFFF0").find("error"), std::string::npos);
}

TEST(DebuggerCommands, StepAndPc) {
  TestMachine m("nop\nnop\nhalt\n");
  Debugger dbg(m.cpu);
  EXPECT_EQ(dbg.command("pc"), "0x0");
  EXPECT_EQ(dbg.command("step"), "stopped pc=0x4");
  EXPECT_EQ(dbg.command("cycles"), "1");
}

TEST(DebuggerCommands, ContinueToHalt) {
  TestMachine m("li r3, 9\nhalt\n");
  Debugger dbg(m.cpu);
  EXPECT_EQ(dbg.command("cont"), "halted");
  EXPECT_EQ(dbg.command("reg r3"), "0x9");
}

TEST(DebuggerCommands, BreakpointViaCommands) {
  TestMachine m("nop\nnop\nhalt\n");
  Debugger dbg(m.cpu);
  EXPECT_EQ(dbg.command("break 0x4"), "ok");
  EXPECT_EQ(dbg.command("cont"), "breakpoint pc=0x4");
  EXPECT_EQ(dbg.command("delete 0x4"), "ok");
  EXPECT_EQ(dbg.command("cont"), "halted");
}

TEST(DebuggerCommands, Disassemble) {
  TestMachine m("add r1, r2, r3\nhalt\n");
  Debugger dbg(m.cpu);
  EXPECT_EQ(dbg.command("disasm"), "add r1, r2, r3");
}

TEST(DebuggerCommands, UnknownCommand) {
  TestMachine m("halt\n");
  Debugger dbg(m.cpu);
  EXPECT_EQ(dbg.command("launch missiles"), "error: unknown command 'launch'");
  EXPECT_NE(dbg.command("").find("error"), std::string::npos);
}

TEST(DebuggerCommands, TrailingGarbageRejected) {
  TestMachine m("halt\n");
  Debugger dbg(m.cpu);
  // A typo that silently dropped its tail could read/write the wrong
  // location; every verb takes an exact argument count.
  EXPECT_NE(dbg.command("reg r3 junk").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("setreg r3 1 2").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("mem 0x100 0x104").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("setmem 0x100 1 2").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("cycles now").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("pc please").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("msr 0").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("step 2").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("cont 10 20").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("break 0x4 0x8").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("disasm 0x0").find("error"), std::string::npos);
  // Nothing above executed or mutated state.
  EXPECT_EQ(dbg.command("cycles"), "0");
  EXPECT_EQ(dbg.command("pc"), "0x0");
}

TEST(DebuggerCommands, NumericParsingRejectsGarbage) {
  TestMachine m("halt\n");
  Debugger dbg(m.cpu);
  EXPECT_NE(dbg.command("reg r3x").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("mem 0x10q").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("setreg r3 12junk").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("cont ten").find("error"), std::string::npos);
  EXPECT_NE(dbg.command("break 0x").find("error"), std::string::npos);
}

TEST(DebuggerCommands, MsrQuery) {
  TestMachine m(
      "  li r3, 0xFFFFFFFF\n"
      "  li r4, 1\n"
      "  add r5, r3, r4\n"
      "  halt\n");
  Debugger dbg(m.cpu);
  dbg.command("cont");
  EXPECT_EQ(dbg.command("msr"), "0x1");  // carry set
}

}  // namespace
}  // namespace mbcosim::iss
