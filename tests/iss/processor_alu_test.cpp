// Per-instruction semantic tests for the ALU, shifter, multiplier and
// special-register operations of the cycle-accurate ISS.
#include <gtest/gtest.h>

#include "iss/test_helpers.hpp"

namespace mbcosim::iss {
namespace {

using testing::TestMachine;

TEST(Alu, AddAndCarryOut) {
  TestMachine m(
      "li r3, 0xFFFFFFFF\n"
      "li r4, 1\n"
      "add r5, r3, r4\n"
      "halt\n");
  EXPECT_EQ(m.run(), Event::kHalted);
  EXPECT_EQ(m.cpu.reg(5), 0u);
  EXPECT_EQ(m.cpu.msr() & isa::Msr::kCarry, isa::Msr::kCarry);
}

TEST(Alu, AddkKeepsCarry) {
  TestMachine m(
      "li r3, 0xFFFFFFFF\n"
      "li r4, 1\n"
      "add r5, r3, r4\n"    // sets carry
      "addk r6, r4, r4\n"   // must not clear it
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(6), 2u);
  EXPECT_EQ(m.cpu.msr() & isa::Msr::kCarry, isa::Msr::kCarry);
}

TEST(Alu, AddcUsesCarryIn) {
  TestMachine m(
      "li r3, 0xFFFFFFFF\n"
      "li r4, 1\n"
      "add r5, r3, r4\n"    // carry = 1
      "addc r6, r4, r4\n"   // 1 + 1 + carry = 3
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(6), 3u);
}

TEST(Alu, RsubComputesBMinusA) {
  TestMachine m(
      "li r3, 10\n"
      "li r4, 3\n"
      "rsub r5, r4, r3\n"   // rd = rb - ra = 10 - 3
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(5), 7u);
}

TEST(Alu, RsubNegativeResultWraps) {
  TestMachine m(
      "li r3, 3\n"
      "li r4, 10\n"
      "rsub r5, r4, r3\n"   // 3 - 10 = -7
      "halt\n");
  m.run();
  EXPECT_EQ(static_cast<i32>(m.cpu.reg(5)), -7);
}

TEST(Alu, AddiSignExtendsImmediate) {
  TestMachine m(
      "li r3, 100\n"
      "addi r5, r3, -1\n"
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(5), 99u);
}

TEST(Alu, ImmPrefixBuilds32BitImmediate) {
  TestMachine m(
      "imm 0x1234\n"
      "addik r3, r0, 0x5678\n"
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 0x12345678u);
}

TEST(Alu, ImmPrefixOnlyAffectsNextInstruction) {
  TestMachine m(
      "imm 0x1234\n"
      "addik r3, r0, 0\n"     // consumes the prefix
      "addik r4, r0, 0x10\n"  // plain sign-extended immediate
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 0x12340000u);
  EXPECT_EQ(m.cpu.reg(4), 0x10u);
}

TEST(Alu, CmpSignedSetsMsb) {
  TestMachine m(
      "li r3, 5\n"           // ra
      "li r4, -7\n"          // rb
      "cmp r5, r3, r4\n"     // rb < ra (signed) -> MSB set
      "cmp r6, r4, r3\n"     // rb > ra -> MSB clear
      "halt\n");
  m.run();
  EXPECT_TRUE((m.cpu.reg(5) & 0x80000000u) != 0);
  EXPECT_TRUE((m.cpu.reg(6) & 0x80000000u) == 0);
}

TEST(Alu, CmpuUnsigned) {
  TestMachine m(
      "li r3, 0xFFFFFFFF\n"  // ra: large unsigned
      "li r4, 1\n"           // rb
      "cmpu r5, r3, r4\n"    // rb < ra (unsigned) -> MSB set
      "cmpu r6, r4, r3\n"    // rb > ra -> clear
      "halt\n");
  m.run();
  EXPECT_TRUE((m.cpu.reg(5) & 0x80000000u) != 0);
  EXPECT_TRUE((m.cpu.reg(6) & 0x80000000u) == 0);
}

TEST(Alu, MultiplyLow32) {
  TestMachine m(
      "li r3, 100000\n"
      "li r4, 100000\n"
      "mul r5, r3, r4\n"   // 10^10 wraps mod 2^32
      "muli r6, r3, -3\n"
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(5), static_cast<Word>(100000ull * 100000ull));
  EXPECT_EQ(static_cast<i32>(m.cpu.reg(6)), -300000);
}

TEST(Alu, DividerSignedAndUnsigned) {
  TestMachine m(
      "li r3, -3\n"
      "li r4, 100\n"
      "idiv r5, r3, r4\n"    // rd = rb / ra = 100 / -3
      "li r6, 7\n"
      "idivu r7, r6, r4\n"   // 100 / 7
      "halt\n");
  m.run();
  EXPECT_EQ(static_cast<i32>(m.cpu.reg(5)), -33);
  EXPECT_EQ(m.cpu.reg(7), 14u);
}

TEST(Alu, DivideByZeroYieldsZero) {
  TestMachine m(
      "li r4, 100\n"
      "idiv r5, r0, r4\n"
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(5), 0u);
}

TEST(Alu, BarrelShifts) {
  TestMachine m(
      "li r3, 0x80000000\n"
      "li r4, 4\n"
      "bsrl r5, r3, r4\n"    // logical
      "bsra r6, r3, r4\n"    // arithmetic
      "bslli r7, r4, 28\n"   // left immediate
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(5), 0x08000000u);
  EXPECT_EQ(m.cpu.reg(6), 0xF8000000u);
  EXPECT_EQ(m.cpu.reg(7), 0x40000000u);
}

TEST(Alu, BarrelShiftAmountMasksToFiveBits) {
  TestMachine m(
      "li r3, 16\n"
      "li r4, 33\n"          // 33 & 31 = 1
      "bsrl r5, r3, r4\n"
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(5), 8u);
}

TEST(Alu, LogicalOps) {
  TestMachine m(
      "li r3, 0xF0F0F0F0\n"
      "li r4, 0x0FF00FF0\n"
      "or r5, r3, r4\n"
      "and r6, r3, r4\n"
      "xor r7, r3, r4\n"
      "andn r8, r3, r4\n"
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(5), 0xFFF0FFF0u);
  EXPECT_EQ(m.cpu.reg(6), 0x00F000F0u);
  EXPECT_EQ(m.cpu.reg(7), 0xFF00FF00u);
  EXPECT_EQ(m.cpu.reg(8), 0xF000F000u);
}

TEST(Alu, SingleBitShiftsAndCarry) {
  TestMachine m(
      "li r3, 5\n"
      "sra r4, r3\n"      // 2, carry = 1
      "addc r5, r0, r0\n" // captures the carry
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(4), 2u);
  EXPECT_EQ(m.cpu.reg(5), 1u);
}

TEST(Alu, SraKeepsSign) {
  TestMachine m(
      "li r3, -8\n"
      "sra r4, r3\n"
      "halt\n");
  m.run();
  EXPECT_EQ(static_cast<i32>(m.cpu.reg(4)), -4);
}

TEST(Alu, SrcShiftsCarryIn) {
  TestMachine m(
      "li r3, 1\n"
      "srl r4, r3\n"      // result 0, carry = 1
      "li r5, 0\n"
      "src r6, r5\n"      // 0 >> 1 with carry in MSB
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(6), 0x80000000u);
}

TEST(Alu, SignExtension) {
  TestMachine m(
      "li r3, 0x80\n"
      "sext8 r4, r3\n"
      "li r5, 0x8000\n"
      "sext16 r6, r5\n"
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(4), 0xFFFFFF80u);
  EXPECT_EQ(m.cpu.reg(6), 0xFFFF8000u);
}

TEST(Alu, R0IsAlwaysZero) {
  TestMachine m(
      "li r3, 55\n"
      "add r0, r3, r3\n"   // write to r0 is discarded
      "add r4, r0, r0\n"
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(0), 0u);
  EXPECT_EQ(m.cpu.reg(4), 0u);
}

TEST(Alu, MsrReadWrite) {
  TestMachine m(
      "li r3, 1\n"
      "mts rmsr, r3\n"       // set carry via MSR write
      "mfs r4, rmsr\n"
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(4), 1u);
}

TEST(Alu, MfsPcReadsProgramCounter) {
  TestMachine m(
      "nop\n"
      "mfs r3, rpc\n"    // at address 4
      "halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 4u);
}

TEST(Alu, DisabledMultiplierTrapsAsIllegal) {
  isa::CpuConfig config = TestMachine::make_default_config();
  config.has_multiplier = false;
  TestMachine m("mul r3, r4, r5\nhalt\n", config);
  EXPECT_EQ(m.run(), Event::kIllegal);
  EXPECT_TRUE(m.cpu.halted());
  EXPECT_EQ(m.cpu.stats().instructions, 0u);  // nothing retired
}

TEST(Alu, DisabledBarrelShifterTrapsAsIllegal) {
  isa::CpuConfig config = TestMachine::make_default_config();
  config.has_barrel_shifter = false;
  TestMachine m("bslli r3, r4, 2\nhalt\n", config);
  m.run();
  EXPECT_TRUE(m.cpu.halted());
  EXPECT_EQ(m.cpu.stats().instructions, 0u);
}

TEST(Alu, DisabledDividerTrapsAsIllegal) {
  isa::CpuConfig config = TestMachine::make_default_config();
  config.has_divider = false;
  TestMachine m("idiv r3, r4, r5\nhalt\n", config);
  m.run();
  EXPECT_TRUE(m.cpu.halted());
  EXPECT_EQ(m.cpu.stats().instructions, 0u);
}

}  // namespace
}  // namespace mbcosim::iss
