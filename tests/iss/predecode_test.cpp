// Predecode cache + batched fast path: transparency and invalidation.
//
// The cache memoizes isa::decode per word address; the contract is that
// it is completely invisible to the architecture — same results, same
// CpuStats, bit for bit — and that guest stores into already-cached text
// (self-modifying code) invalidate the stale entry.
#include <gtest/gtest.h>

#include <string>

#include "iss/test_helpers.hpp"

namespace mbcosim::iss {
namespace {

using testing::TestMachine;

// Run `source` to completion with the predecode cache on or off and
// return the final statistics (asserting the program halted).
CpuStats run_with_predecode(const std::string& source, bool predecode,
                            Word* r3_out = nullptr) {
  TestMachine m(source);
  m.cpu.set_predecode(predecode);
  const Event event = m.run();
  EXPECT_EQ(event, Event::kHalted);
  if (r3_out != nullptr) *r3_out = m.cpu.reg(3);
  return m.cpu.stats();
}

void expect_identical_stats(const CpuStats& fast, const CpuStats& slow) {
  EXPECT_EQ(fast.cycles, slow.cycles);
  EXPECT_EQ(fast.instructions, slow.instructions);
  EXPECT_EQ(fast.loads, slow.loads);
  EXPECT_EQ(fast.stores, slow.stores);
  EXPECT_EQ(fast.branches, slow.branches);
  EXPECT_EQ(fast.branches_taken, slow.branches_taken);
  EXPECT_EQ(fast.multiplies, slow.multiplies);
  EXPECT_EQ(fast.fsl_stall_cycles, slow.fsl_stall_cycles);
}

// A program that stores over an instruction it has already executed and
// runs it again. First pass through `patch` executes `addik r3, r3, 1`;
// the store replaces it with `addik r3, r3, 100`, so the second pass
// must see the new semantics: r3 == 1 + 100 == 101. A stale predecode
// entry would keep executing the old +1 and land on r3 == 2.
std::string self_modifying_program() {
  isa::Instruction patched;
  patched.op = isa::Op::kAddk;
  patched.rd = 3;
  patched.ra = 3;
  patched.imm = 100;
  patched.imm_form = true;
  const Word patch_word = isa::encode(patched);
  return "start:\n"
         "  li r1, " +
         std::to_string(patch_word) +
         "\n"
         "  la r2, patch\n"
         "  li r4, 2\n"
         "loop:\n"
         "patch:\n"
         "  addik r3, r3, 1\n"
         "  sw r1, r2, r0\n"
         "  addik r4, r4, -1\n"
         "  bnei r4, loop\n"
         "  halt\n";
}

TEST(Predecode, SelfModifyingCodeSeesNewSemantics) {
  Word r3 = 0;
  run_with_predecode(self_modifying_program(), true, &r3);
  EXPECT_EQ(r3, 101u);
}

TEST(Predecode, SelfModifyingCodeMatchesUncachedExecution) {
  Word fast_r3 = 0;
  Word slow_r3 = 0;
  const CpuStats fast =
      run_with_predecode(self_modifying_program(), true, &fast_r3);
  const CpuStats slow =
      run_with_predecode(self_modifying_program(), false, &slow_r3);
  EXPECT_EQ(fast_r3, 101u);
  EXPECT_EQ(fast_r3, slow_r3);
  expect_identical_stats(fast, slow);
}

// A mixed workload — taken and not-taken branches, loads/stores, a
// multiply, an IMM-prefixed 32-bit constant — must produce bit-identical
// statistics with the cache on and off.
TEST(Predecode, MixedWorkloadStatsIdentical) {
  const std::string source =
      "start:\n"
      "  li r1, 0x12345678\n"  // IMM prefix path
      "  la r2, buffer\n"
      "  li r4, 10\n"
      "loop:\n"
      "  sw r4, r2, r0\n"
      "  lw r5, r2, r0\n"
      "  mul r6, r5, r4\n"
      "  addik r3, r3, 7\n"
      "  addik r4, r4, -1\n"
      "  bneid r4, loop\n"  // delay-slot branch
      "  xor r7, r7, r5\n"
      "  halt\n"
      "buffer: .space 16\n";
  Word fast_r3 = 0;
  Word slow_r3 = 0;
  const CpuStats fast = run_with_predecode(source, true, &fast_r3);
  const CpuStats slow = run_with_predecode(source, false, &slow_r3);
  EXPECT_EQ(fast_r3, slow_r3);
  expect_identical_stats(fast, slow);
  EXPECT_EQ(fast_r3, 70u);
}

// run() batches only when nothing is observing; an attached trace hook
// must force the precise per-step path (and still halt correctly).
TEST(Predecode, TraceHookDisablesFastPath) {
  TestMachine m(
      "  li r4, 5\n"
      "loop:\n"
      "  addik r3, r3, 2\n"
      "  addik r4, r4, -1\n"
      "  bnei r4, loop\n"
      "  halt\n");
  EXPECT_TRUE(m.cpu.fast_path_available());
  u64 hook_steps = 0;
  m.cpu.set_trace([&hook_steps](const TraceRecord&) { ++hook_steps; });
  EXPECT_FALSE(m.cpu.fast_path_available());
  EXPECT_EQ(m.run(), Event::kHalted);
  EXPECT_EQ(hook_steps, m.cpu.stats().instructions);
  EXPECT_EQ(m.cpu.reg(3), 10u);
}

// run_batch in stop-before-FSL mode must return kFslPending without
// executing the FSL access, so a co-simulation engine can bring the
// hardware to cycle parity first.
TEST(Predecode, RunBatchStopsBeforeFslAccess) {
  TestMachine m(
      "  addik r3, r3, 1\n"
      "  addik r3, r3, 1\n"
      "  put r3, rfsl0\n"
      "  halt\n");
  ASSERT_TRUE(m.cpu.fast_path_available());
  const BatchResult batch = m.cpu.run_batch(1'000'000, /*stop_before_fsl=*/true);
  EXPECT_EQ(batch.stop, BatchStop::kFslPending);
  EXPECT_EQ(m.cpu.stats().instructions, 2u);  // the put did NOT execute
  EXPECT_EQ(m.cpu.reg(3), 2u);
  EXPECT_EQ(m.cpu.stats().fsl_writes, 0u);
}

// Disabling the cache mid-flight (the builder/CLI knob) falls back to
// decode-per-step without disturbing architectural state.
TEST(Predecode, DisableMidRunKeepsExecutingCorrectly) {
  TestMachine m(
      "  li r4, 6\n"
      "loop:\n"
      "  addik r3, r3, 3\n"
      "  addik r4, r4, -1\n"
      "  bnei r4, loop\n"
      "  halt\n");
  // Execute a few steps with the cache warm, then turn it off.
  for (int i = 0; i < 4; ++i) m.cpu.step();
  EXPECT_TRUE(m.cpu.predecode_enabled());
  m.cpu.set_predecode(false);
  EXPECT_FALSE(m.cpu.predecode_enabled());
  EXPECT_FALSE(m.cpu.fast_path_available());
  EXPECT_EQ(m.run(), Event::kHalted);
  EXPECT_EQ(m.cpu.reg(3), 18u);
}

}  // namespace
}  // namespace mbcosim::iss
