// Superblock translation tier: transparency, promotion and retirement.
//
// The dbt tier stitches hot basic blocks from the predecode cache into
// threaded code. Its contract extends the predecode contract one level
// up: architectural state and CpuStats stay bit-identical across all
// three execution tiers, and a guest store into any word covered by a
// translated superblock retires the stale translation (DESIGN.md §12).
#include <gtest/gtest.h>

#include <string>

#include "iss/test_helpers.hpp"

namespace mbcosim::iss {
namespace {

using testing::TestMachine;

// Run `source` to completion under `tier` and return the final CpuStats
// (asserting the program halted). Optional out-params expose r3 and the
// dbt counters for the callers that check the translation machinery.
CpuStats run_with_tier(const std::string& source, ExecTier tier,
                       Word* r3_out = nullptr, DbtStats* dbt_out = nullptr) {
  TestMachine m(source);
  m.cpu.set_exec_tier(tier);
  const Event event = m.run();
  EXPECT_EQ(event, Event::kHalted);
  if (r3_out != nullptr) *r3_out = m.cpu.reg(3);
  if (dbt_out != nullptr) *dbt_out = m.cpu.dbt_stats();
  return m.cpu.stats();
}

void expect_identical_stats(const CpuStats& a, const CpuStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.branches, b.branches);
  EXPECT_EQ(a.branches_taken, b.branches_taken);
  EXPECT_EQ(a.multiplies, b.multiplies);
  EXPECT_EQ(a.fsl_stall_cycles, b.fsl_stall_cycles);
}

// A loop hot enough to cross the promotion threshold, with loads,
// stores, a multiply, an IMM-prefixed constant and a delay-slot branch
// so every handler family gets exercised through the threaded code.
const char* hot_mixed_program() {
  return "start:\n"
         "  li r1, 0x12345678\n"  // IMM prefix path
         "  la r2, buffer\n"
         "  li r4, 50\n"
         "loop:\n"
         "  sw r4, r2, r0\n"
         "  lw r5, r2, r0\n"
         "  mul r6, r5, r4\n"
         "  addik r3, r3, 7\n"
         "  addik r4, r4, -1\n"
         "  bneid r4, loop\n"  // delay-slot branch: block exit + precise slot
         "  xor r7, r7, r5\n"
         "  halt\n"
         "buffer: .space 16\n";
}

TEST(Dbt, TierIdentityOnMixedWorkload) {
  Word r3[3] = {0, 0, 0};
  const CpuStats precise =
      run_with_tier(hot_mixed_program(), ExecTier::kPrecise, &r3[0]);
  const CpuStats predecode =
      run_with_tier(hot_mixed_program(), ExecTier::kPredecode, &r3[1]);
  DbtStats dbt_counters;
  const CpuStats dbt = run_with_tier(hot_mixed_program(), ExecTier::kDbt,
                                     &r3[2], &dbt_counters);
  expect_identical_stats(dbt, precise);
  expect_identical_stats(predecode, precise);
  EXPECT_EQ(r3[0], 350u);
  EXPECT_EQ(r3[1], r3[0]);
  EXPECT_EQ(r3[2], r3[0]);
  // The loop is hot, so the dbt tier must actually have engaged.
  EXPECT_GE(dbt_counters.blocks_translated, 1u);
  EXPECT_GE(dbt_counters.block_dispatches, 1u);
  EXPECT_GT(dbt_counters.dbt_instructions, 0u);
  EXPECT_LE(dbt_counters.dbt_instructions, dbt.instructions);
}

// Straight-line code that executes once never reaches the promotion
// threshold: the tier stays cold and charges no translation work.
TEST(Dbt, ColdCodeIsNeverTranslated) {
  DbtStats counters;
  Word r3 = 0;
  run_with_tier(
      "  addik r3, r3, 5\n"
      "  addik r3, r3, 6\n"
      "  halt\n",
      ExecTier::kDbt, &r3, &counters);
  EXPECT_EQ(r3, 11u);
  EXPECT_EQ(counters.blocks_translated, 0u);
  EXPECT_EQ(counters.block_dispatches, 0u);
  EXPECT_EQ(counters.dbt_instructions, 0u);
}

// Below the dbt tier the machinery is off and its counters stay zero.
TEST(Dbt, CountersZeroBelowDbtTier) {
  DbtStats counters;
  run_with_tier(hot_mixed_program(), ExecTier::kPredecode, nullptr,
                &counters);
  EXPECT_EQ(counters.blocks_translated, 0u);
  EXPECT_EQ(counters.block_dispatches, 0u);
  EXPECT_EQ(counters.smc_retirements, 0u);
  EXPECT_EQ(counters.dbt_instructions, 0u);
}

// Self-modifying code: make a loop hot (translated), then store into
// the *middle* of the translated superblock and re-enter it. The store
// must retire the translation so the re-entry sees the new semantics.
//
// First pass: 20 iterations of `addik r3, r3, 1` -> r3 == 20. The store
// rewrites that instruction to `addik r3, r3, 100`; the second pass
// runs 2 more iterations -> r3 == 20 + 200 == 220. A stale superblock
// would keep adding 1 and land on 22.
std::string smc_into_hot_block_program() {
  isa::Instruction patched;
  patched.op = isa::Op::kAddk;
  patched.rd = 3;
  patched.ra = 3;
  patched.imm = 100;
  patched.imm_form = true;
  const Word patch_word = isa::encode(patched);
  return "start:\n"
         "  li r1, " +
         std::to_string(patch_word) +
         "\n"
         "  la r2, patch\n"
         "  li r5, 1\n"  // one patch pass allowed
         "  li r4, 20\n"
         "loop:\n"
         "  addik r6, r6, 1\n"  // block head; patch lands *after* it
         "patch:\n"
         "  addik r3, r3, 1\n"
         "  addik r4, r4, -1\n"
         "  bnei r4, loop\n"
         "  beqi r5, done\n"
         "  addik r5, r5, -1\n"
         "  sw r1, r2, r0\n"  // store into the translated loop body
         "  li r4, 2\n"
         "  bri loop\n"
         "done:\n"
         "  halt\n";
}

TEST(Dbt, SmcStoreIntoTranslatedBlockRetiresIt) {
  Word r3 = 0;
  DbtStats counters;
  run_with_tier(smc_into_hot_block_program(), ExecTier::kDbt, &r3,
                &counters);
  EXPECT_EQ(r3, 220u);
  EXPECT_GE(counters.blocks_translated, 1u);
  EXPECT_GE(counters.smc_retirements, 1u);
}

TEST(Dbt, SmcProgramIdenticalAcrossTiers) {
  Word precise_r3 = 0;
  Word dbt_r3 = 0;
  const std::string source = smc_into_hot_block_program();
  const CpuStats precise =
      run_with_tier(source, ExecTier::kPrecise, &precise_r3);
  const CpuStats dbt = run_with_tier(source, ExecTier::kDbt, &dbt_r3);
  EXPECT_EQ(precise_r3, 220u);
  EXPECT_EQ(dbt_r3, precise_r3);
  expect_identical_stats(dbt, precise);
}

// Dropping the tier mid-flight retires every superblock and continues
// executing correctly on the lower tier (the builder/CLI knob).
TEST(Dbt, TierDowngradeMidRunKeepsExecutingCorrectly) {
  TestMachine m(
      "  li r4, 40\n"
      "loop:\n"
      "  addik r3, r3, 3\n"
      "  addik r4, r4, -1\n"
      "  bnei r4, loop\n"
      "  halt\n");
  ASSERT_EQ(m.cpu.exec_tier(), ExecTier::kDbt);
  // Warm the loop well past the promotion threshold, then downgrade.
  for (int i = 0; i < 60; ++i) m.cpu.step();
  m.cpu.set_exec_tier(ExecTier::kPredecode);
  EXPECT_EQ(m.cpu.exec_tier(), ExecTier::kPredecode);
  EXPECT_EQ(m.run(), Event::kHalted);
  EXPECT_EQ(m.cpu.reg(3), 120u);
  // And the legacy knob still maps false -> precise, true -> default.
  m.cpu.set_predecode(false);
  EXPECT_EQ(m.cpu.exec_tier(), ExecTier::kPrecise);
  m.cpu.set_predecode(true);
  EXPECT_EQ(m.cpu.exec_tier(), ExecTier::kDbt);
}

// A trace hook forces the precise per-step path even on the dbt tier;
// every retired instruction must reach the hook.
TEST(Dbt, TraceHookDisablesFastPath) {
  TestMachine m(
      "  li r4, 20\n"
      "loop:\n"
      "  addik r3, r3, 2\n"
      "  addik r4, r4, -1\n"
      "  bnei r4, loop\n"
      "  halt\n");
  EXPECT_TRUE(m.cpu.fast_path_available());
  u64 hook_steps = 0;
  m.cpu.set_trace([&hook_steps](const TraceRecord&) { ++hook_steps; });
  EXPECT_FALSE(m.cpu.fast_path_available());
  EXPECT_EQ(m.run(), Event::kHalted);
  EXPECT_EQ(hook_steps, m.cpu.stats().instructions);
  EXPECT_EQ(m.cpu.reg(3), 40u);
  EXPECT_EQ(m.cpu.dbt_stats().block_dispatches, 0u);
}

}  // namespace
}  // namespace mbcosim::iss
