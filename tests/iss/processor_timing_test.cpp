// Cycle-accuracy tests: the ISS must charge exactly the documented
// latencies (this is the property the whole co-simulation environment is
// built on — paper Section I).
#include <gtest/gtest.h>

#include <vector>

#include "iss/test_helpers.hpp"

namespace mbcosim::iss {
namespace {

using testing::TestMachine;

/// Cycles consumed by the program body, excluding the final halt (bri 0,
/// 3 cycles).
Cycle body_cycles(const char* source) {
  TestMachine m(source);
  EXPECT_EQ(m.run(), Event::kHalted);
  return m.cpu.stats().cycles - 3;
}

TEST(CycleAccuracy, SingleAluOp) {
  EXPECT_EQ(body_cycles("add r3, r4, r5\nhalt\n"), 1u);
}

TEST(CycleAccuracy, MultiplyIsThreeCycles) {
  EXPECT_EQ(body_cycles("mul r3, r4, r5\nhalt\n"), 3u);
}

TEST(CycleAccuracy, DivideIs34Cycles) {
  EXPECT_EQ(body_cycles("idiv r3, r4, r5\nhalt\n"), 34u);
}

TEST(CycleAccuracy, LoadStoreTwoCycles) {
  EXPECT_EQ(body_cycles("lwi r3, r0, 0\nhalt\n"), 2u);
  EXPECT_EQ(body_cycles("swi r3, r0, 0\nhalt\n"), 2u);
}

TEST(CycleAccuracy, TakenBranchThreeCycles) {
  EXPECT_EQ(body_cycles("bri next\nnext: halt\n"), 3u);
}

TEST(CycleAccuracy, DelaySlotBranchTwoCyclesPlusSlot) {
  // brid (2) + delay-slot add (1).
  EXPECT_EQ(body_cycles("brid next\nadd r3, r3, r3\nnext: halt\n"), 3u);
}

TEST(CycleAccuracy, NotTakenConditionalOneCycle) {
  EXPECT_EQ(body_cycles("bnei r0, away\nhalt\naway: halt\n"), 1u);
}

TEST(CycleAccuracy, TakenConditionalThreeCycles) {
  EXPECT_EQ(body_cycles("beqi r0, away\nhalt\naway: halt\n"), 3u);
}

TEST(CycleAccuracy, LoopCycleCountExact) {
  // 4 iterations of: addik (1) + bnei (taken 3 / not-taken 1).
  // Total = 4 * 1 + 3 * 3 + 1 = 14, plus li r3 (imm + addik = 2).
  const Cycle cycles = body_cycles(
      "  li r3, 4\n"
      "loop:\n"
      "  addik r3, r3, -1\n"
      "  bnei r3, loop\n"
      "  halt\n");
  EXPECT_EQ(cycles, 2u + 4u + 3u * 3u + 1u);
}

TEST(CycleAccuracy, InstructionCountMatches) {
  TestMachine m(
      "  li r3, 2\n"
      "loop:\n"
      "  addik r3, r3, -1\n"
      "  bnei r3, loop\n"
      "  halt\n");
  m.run();
  // imm, addik (li), 2x addik, 2x bnei, halt = 7 instructions.
  EXPECT_EQ(m.cpu.stats().instructions, 7u);
}

TEST(CycleAccuracy, FslStallCyclesAreAccounted) {
  TestMachine m("get r3, rfsl0\nhalt\n");
  for (int i = 0; i < 10; ++i) m.cpu.step();
  m.hub.from_hw(0).try_write(1, false);
  m.run();
  EXPECT_EQ(m.cpu.stats().fsl_stall_cycles, 10u);
  // Total: 10 stall + 2 (get) + 3 (halt).
  EXPECT_EQ(m.cpu.stats().cycles, 15u);
}

TEST(CycleAccuracy, TraceHookSeesEveryStepIncludingTheHalt) {
  TestMachine m(
      "  add r3, r0, r0\n"
      "  mul r4, r3, r3\n"
      "  halt\n");
  std::vector<TraceRecord> records;
  m.cpu.set_trace([&records](const TraceRecord& r) { records.push_back(r); });
  m.run();
  // Every step reaches the hook — the two body instructions and the
  // final halting branch (which retires and pays its cycles like any
  // other instruction before ending the simulation).
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].pc, 0u);
  EXPECT_EQ(records[0].cycles, 1u);
  EXPECT_EQ(records[0].event, Event::kRetired);
  EXPECT_EQ(records[1].pc, 4u);
  EXPECT_EQ(records[1].cycles, 3u);
  EXPECT_EQ(records[1].instruction.op, isa::Op::kMul);
  EXPECT_EQ(records[2].pc, 8u);
  EXPECT_EQ(records[2].event, Event::kHalted);
  EXPECT_EQ(records[2].total_cycles, m.cpu.stats().cycles);
}

TEST(CycleAccuracy, TraceHookSeesStallsAndIllegal) {
  TestMachine m("get r3, rfsl0\nhalt\n");
  std::vector<TraceRecord> records;
  m.cpu.set_trace([&records](const TraceRecord& r) { records.push_back(r); });
  for (int i = 0; i < 3; ++i) m.cpu.step();  // blocked: 3 stall steps
  ASSERT_EQ(records.size(), 3u);
  for (const TraceRecord& r : records) {
    EXPECT_EQ(r.event, Event::kFslStall);
    EXPECT_EQ(r.pc, 0u);
    EXPECT_EQ(r.cycles, 1u);
  }
  m.hub.from_hw(0).try_write(1, false);
  m.run();
  ASSERT_EQ(records.size(), 5u);  // + get retires, halt
  EXPECT_EQ(records[3].event, Event::kRetired);
  EXPECT_EQ(records[4].event, Event::kHalted);
}

TEST(CycleAccuracy, FetchFaultChargesACycleAndReachesTheHook) {
  TestMachine m("halt\n");
  std::vector<TraceRecord> records;
  m.cpu.set_trace([&records](const TraceRecord& r) { records.push_back(r); });
  // Jump the PC outside the 64 KiB LMB BRAM: the fetch faults.
  m.cpu.reset(0x10000);
  const StepResult result = m.cpu.step();
  EXPECT_EQ(result.event, Event::kIllegal);
  EXPECT_EQ(result.cycles, 1u);
  // The faulting fetch consumed a simulated cycle like every other step.
  EXPECT_EQ(m.cpu.stats().cycles, 1u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event, Event::kIllegal);
  EXPECT_EQ(records[0].pc, 0x10000u);
  EXPECT_EQ(records[0].raw, 0u);
}

TEST(CycleAccuracy, StepResultCyclesSumToStatsOnEveryPath) {
  // Mix of retires, FSL stalls, and a final fetch fault: the per-step
  // cycle charges must add up to the aggregate counter exactly.
  TestMachine m(
      "  add r3, r0, r0\n"
      "  get r4, rfsl0\n"
      "  li r5, 0x10000\n"
      "  bra r5\n");  // jump out of memory -> fetch fault
  Cycle summed = 0;
  for (int i = 0; i < 5; ++i) {  // add, then 4 blocked get steps
    summed += m.cpu.step().cycles;
  }
  m.hub.from_hw(0).try_write(9, false);
  for (;;) {
    const StepResult result = m.cpu.step();
    summed += result.cycles;
    if (result.event == Event::kIllegal || result.event == Event::kHalted) {
      break;
    }
  }
  EXPECT_EQ(summed, m.cpu.stats().cycles);
}

TEST(CycleAccuracy, ResetClearsEverything) {
  TestMachine m("li r3, 7\nhalt\n");
  m.run();
  EXPECT_NE(m.cpu.stats().cycles, 0u);
  m.cpu.reset(0);
  EXPECT_EQ(m.cpu.stats().cycles, 0u);
  EXPECT_EQ(m.cpu.reg(3), 0u);
  EXPECT_FALSE(m.cpu.halted());
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 7u);
}

}  // namespace
}  // namespace mbcosim::iss
