// FSL instruction semantics on the ISS: blocking/non-blocking get/put,
// control-bit handling, stalling (paper Section III-B).
#include <gtest/gtest.h>

#include "iss/test_helpers.hpp"

namespace mbcosim::iss {
namespace {

using testing::TestMachine;

TEST(Fsl, PutWritesChannel) {
  TestMachine m(
      "  li r3, 123\n"
      "  put r3, rfsl0\n"
      "  cput r3, rfsl1\n"
      "  halt\n");
  EXPECT_EQ(m.run(), Event::kHalted);
  auto word0 = m.hub.to_hw(0).try_read();
  ASSERT_TRUE(word0.has_value());
  EXPECT_EQ(word0->data, 123u);
  EXPECT_FALSE(word0->control);
  auto word1 = m.hub.to_hw(1).try_read();
  ASSERT_TRUE(word1.has_value());
  EXPECT_TRUE(word1->control);
}

TEST(Fsl, GetReadsChannel) {
  TestMachine m(
      "  get r3, rfsl2\n"
      "  halt\n");
  m.hub.from_hw(2).try_write(777, false);
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 777u);
}

TEST(Fsl, BlockingGetStallsUntilData) {
  TestMachine m(
      "  get r3, rfsl0\n"
      "  halt\n");
  // Step a few times: the processor must stall in place.
  for (int i = 0; i < 5; ++i) {
    const StepResult r = m.cpu.step();
    EXPECT_EQ(r.event, Event::kFslStall);
    EXPECT_EQ(r.cycles, 1u);
    EXPECT_EQ(m.cpu.pc(), 0u);
  }
  EXPECT_EQ(m.cpu.stats().fsl_stall_cycles, 5u);
  m.hub.from_hw(0).try_write(9, false);
  EXPECT_EQ(m.cpu.step().event, Event::kRetired);
  EXPECT_EQ(m.cpu.reg(3), 9u);
}

TEST(Fsl, BlockingPutStallsWhenFull) {
  TestMachine m(
      "  li r3, 5\n"
      "  put r3, rfsl0\n"
      "  halt\n");
  auto& channel = m.hub.to_hw(0);
  while (!channel.full()) channel.try_write(0, false);
  m.cpu.step();  // imm
  m.cpu.step();  // addik
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(m.cpu.step().event, Event::kFslStall);
  }
  (void)channel.try_read();  // make room
  EXPECT_EQ(m.cpu.step().event, Event::kRetired);
}

TEST(Fsl, NonBlockingGetSetsCarryOnEmpty) {
  TestMachine m(
      "  nget r3, rfsl0\n"   // empty -> carry set, r3 unchanged
      "  addc r4, r0, r0\n"  // r4 = carry
      "  halt\n");
  EXPECT_EQ(m.run(), Event::kHalted);
  EXPECT_EQ(m.cpu.reg(4), 1u);
}

TEST(Fsl, NonBlockingGetClearsCarryOnSuccess) {
  TestMachine m(
      "  nget r3, rfsl0\n"
      "  addc r4, r0, r0\n"
      "  halt\n");
  m.hub.from_hw(0).try_write(55, false);
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 55u);
  EXPECT_EQ(m.cpu.reg(4), 0u);
}

TEST(Fsl, NonBlockingPutSetsCarryWhenFull) {
  TestMachine m(
      "  li r3, 1\n"
      "  nput r3, rfsl0\n"
      "  addc r4, r0, r0\n"
      "  halt\n");
  auto& channel = m.hub.to_hw(0);
  while (!channel.full()) channel.try_write(0, false);
  m.run();
  EXPECT_EQ(m.cpu.reg(4), 1u);
}

TEST(Fsl, ControlBitMismatchSetsFslError) {
  TestMachine m(
      "  get r3, rfsl0\n"   // expects data word
      "  halt\n");
  m.hub.from_hw(0).try_write(1, /*control=*/true);  // control word arrives
  m.run();
  EXPECT_NE(m.cpu.msr() & isa::Msr::kFslError, 0u);
}

TEST(Fsl, ControlGetMatchesControlWord) {
  TestMachine m(
      "  cget r3, rfsl0\n"
      "  halt\n");
  m.hub.from_hw(0).try_write(1, /*control=*/true);
  m.run();
  EXPECT_EQ(m.cpu.msr() & isa::Msr::kFslError, 0u);
}

TEST(Fsl, AccessWithoutHubIsIllegal) {
  const auto program = assembler::assemble_or_throw("get r3, rfsl0\nhalt\n");
  LmbMemory memory(4096);
  memory.load_program(program);
  Processor cpu(TestMachine::make_default_config(), memory, nullptr);
  cpu.reset(0);
  EXPECT_EQ(cpu.step().event, Event::kIllegal);
}

TEST(Fsl, ChannelAboveConfiguredLinksIsIllegal) {
  isa::CpuConfig config = TestMachine::make_default_config();
  config.fsl_links = 2;
  TestMachine m("get r3, rfsl5\nhalt\n", config);
  EXPECT_EQ(m.run(), Event::kIllegal);
}

TEST(Fsl, StatisticsCountReadsAndWrites) {
  TestMachine m(
      "  li r3, 1\n"
      "  put r3, rfsl0\n"
      "  put r3, rfsl0\n"
      "  get r4, rfsl1\n"
      "  halt\n");
  m.hub.from_hw(1).try_write(7, false);
  m.run();
  EXPECT_EQ(m.cpu.stats().fsl_writes, 2u);
  EXPECT_EQ(m.cpu.stats().fsl_reads, 1u);
}

}  // namespace
}  // namespace mbcosim::iss
