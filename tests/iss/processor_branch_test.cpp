// Control-flow tests: branches, delay slots, link/return, halting.
#include <gtest/gtest.h>

#include "iss/test_helpers.hpp"

namespace mbcosim::iss {
namespace {

using testing::TestMachine;

TEST(Branch, UnconditionalSkips) {
  TestMachine m(
      "  bri over\n"
      "  li r3, 1\n"      // skipped
      "over:\n"
      "  li r4, 2\n"
      "  halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 0u);
  EXPECT_EQ(m.cpu.reg(4), 2u);
}

TEST(Branch, ConditionalTakenAndNotTaken) {
  TestMachine m(
      "  li r3, 0\n"
      "  beqi r3, taken\n"
      "  li r4, 99\n"       // skipped
      "taken:\n"
      "  li r5, 1\n"
      "  bnei r3, nottaken\n"  // r3 == 0: falls through
      "  li r6, 2\n"
      "nottaken:\n"
      "  halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(4), 0u);
  EXPECT_EQ(m.cpu.reg(5), 1u);
  EXPECT_EQ(m.cpu.reg(6), 2u);
}

TEST(Branch, AllConditionCodes) {
  TestMachine m(
      "  li r3, -1\n"
      "  addk r10, r0, r0\n"
      "  blti r3, L1\n"
      "  bri fail\n"
      "L1:\n"
      "  addik r10, r10, 1\n"
      "  blei r3, L2\n"
      "  bri fail\n"
      "L2:\n"
      "  addik r10, r10, 1\n"
      "  li r3, 1\n"
      "  bgti r3, L3\n"
      "  bri fail\n"
      "L3:\n"
      "  addik r10, r10, 1\n"
      "  bgei r3, L4\n"
      "  bri fail\n"
      "L4:\n"
      "  addik r10, r10, 1\n"
      "  halt\n"
      "fail:\n"
      "  li r10, 0xdead\n"
      "  halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(10), 4u);
}

TEST(Branch, DelaySlotExecutes) {
  TestMachine m(
      "  li r3, 0\n"
      "  brid over\n"
      "  addik r3, r3, 7\n"  // delay slot: executes
      "  addik r3, r3, 100\n"  // skipped
      "over:\n"
      "  halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 7u);
}

TEST(Branch, ConditionalDelaySlot) {
  TestMachine m(
      "  li r3, 1\n"
      "  li r4, 0\n"
      "  bgtid r3, over\n"
      "  addik r4, r4, 5\n"  // delay slot
      "  addik r4, r4, 100\n"
      "over:\n"
      "  halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(4), 5u);
}

TEST(Branch, NotTakenDelayFormFallsThrough) {
  TestMachine m(
      "  li r3, 1\n"
      "  beqid r3, away\n"   // not taken
      "  addik r4, r4, 1\n"  // executes as a normal instruction
      "  addik r4, r4, 1\n"
      "  halt\n"
      "away:\n"
      "  li r4, 99\n"
      "  halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(4), 2u);
}

TEST(Branch, LinkAndReturn) {
  TestMachine m(
      "  brlid r15, func\n"
      "  nop\n"              // delay slot of the call
      "  li r4, 2\n"         // return lands here (r15 + 8)
      "  halt\n"
      "func:\n"
      "  li r3, 1\n"
      "  rtsd r15, 8\n"
      "  nop\n");            // delay slot of the return
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 1u);
  EXPECT_EQ(m.cpu.reg(4), 2u);
  EXPECT_EQ(m.cpu.reg(15), 0u);  // link = address of the branch itself
}

TEST(Branch, RegisterTargetBranch) {
  TestMachine m(
      "  la r5, target\n"
      "  bra r5\n"           // absolute register branch
      "  li r3, 99\n"
      "target:\n"
      "  li r4, 3\n"
      "  halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 0u);
  EXPECT_EQ(m.cpu.reg(4), 3u);
}

TEST(Branch, AbsoluteImmediateBranch) {
  TestMachine m(
      "  brai 12\n"          // absolute address 12
      "  li r3, 99\n"        // at 4 (skipped; li is 2 words: 4, 8)
      "  li r4, 4\n"         // at 12
      "  halt\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 0u);
  EXPECT_EQ(m.cpu.reg(4), 4u);
}

TEST(Branch, BranchInDelaySlotIsIllegal) {
  // A branch in a delay slot is architecturally illegal.
  TestMachine m(
      "  brid over\n"
      "  bri 8\n"            // branch in delay slot
      "over:\n"
      "  halt\n");
  EXPECT_EQ(m.run(), Event::kIllegal);
}

TEST(Branch, HaltStopsAndStaysHalted) {
  TestMachine m("halt\n");
  EXPECT_EQ(m.run(), Event::kHalted);
  EXPECT_TRUE(m.cpu.halted());
  // Further steps are no-ops.
  const StepResult after = m.cpu.step();
  EXPECT_EQ(after.event, Event::kHalted);
  EXPECT_EQ(after.cycles, 0u);
}

TEST(Branch, BranchStatistics) {
  TestMachine m(
      "  li r3, 3\n"
      "loop:\n"
      "  addik r3, r3, -1\n"
      "  bnei r3, loop\n"
      "  halt\n");
  m.run();
  // bnei executes 3 times (2 taken, 1 not) + final halting bri.
  EXPECT_EQ(m.cpu.stats().branches, 4u);
  EXPECT_EQ(m.cpu.stats().branches_taken, 3u);
}

TEST(Branch, FetchOutsideMemoryIsIllegal) {
  // Jump far outside the 64 KiB memory.
  TestMachine m(
      "  li r3, 0x100000\n"
      "  bra r3\n");
  EXPECT_EQ(m.run(), Event::kIllegal);
}

}  // namespace
}  // namespace mbcosim::iss
