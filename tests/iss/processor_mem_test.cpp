// LMB memory model and load/store semantics, plus OPB bus accesses.
#include <gtest/gtest.h>

#include "bus/opb_bus.hpp"
#include "iss/test_helpers.hpp"

namespace mbcosim::iss {
namespace {

using testing::TestMachine;

TEST(Memory, WordRoundTrip) {
  LmbMemory memory(1024);
  memory.write_word(0x10, 0xCAFEBABE);
  EXPECT_EQ(memory.read_word(0x10), 0xCAFEBABEu);
}

TEST(Memory, ByteAndHalfAccess) {
  LmbMemory memory(1024);
  memory.write_word(0, 0x11223344);
  EXPECT_EQ(memory.read_byte(0), 0x44u);
  EXPECT_EQ(memory.read_byte(3), 0x11u);
  EXPECT_EQ(memory.read_half(0), 0x3344u);
  EXPECT_EQ(memory.read_half(2), 0x1122u);
  memory.write_byte(1, 0xAA);
  EXPECT_EQ(memory.read_word(0), 0x1122AA44u);
  memory.write_half(2, 0xBBCC);
  EXPECT_EQ(memory.read_word(0), 0xBBCCAA44u);
}

TEST(Memory, UnalignedAddressesTruncate) {
  LmbMemory memory(1024);
  memory.write_word(0, 0xAABBCCDD);
  EXPECT_EQ(memory.read_word(2), 0xAABBCCDDu);  // word access ignores A[1:0]
  EXPECT_EQ(memory.read_half(1), 0xCCDDu);      // half ignores A[0]
}

TEST(Memory, OutOfRangeThrows) {
  LmbMemory memory(1024);
  EXPECT_THROW(memory.read_word(1024), SimError);
  EXPECT_THROW(memory.write_word(1024, 0), SimError);
  EXPECT_FALSE(memory.contains(1023, 4));
  EXPECT_TRUE(memory.contains(1020, 4));
}

TEST(Memory, RejectsBadSizes) {
  EXPECT_THROW(LmbMemory(0), SimError);
  EXPECT_THROW(LmbMemory(13), SimError);
}

TEST(Memory, LoadProgramAtOrigin) {
  const auto program = assembler::assemble_or_throw(
      ".org 0x40\nentry: .word 0x12345678\n");
  LmbMemory memory(1024);
  memory.load_program(program);
  EXPECT_EQ(memory.read_word(0x40), 0x12345678u);
}

TEST(LoadStore, WordThroughPointer) {
  TestMachine m(
      "  la r5, buffer\n"
      "  li r3, 0xAABBCCDD\n"
      "  swi r3, r5, 0\n"
      "  lwi r4, r5, 0\n"
      "  halt\n"
      "buffer: .space 4\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(4), 0xAABBCCDDu);
}

TEST(LoadStore, RegisterPlusRegisterAddressing) {
  TestMachine m(
      "  la r5, table\n"
      "  li r6, 8\n"
      "  lw r4, r5, r6\n"  // table[2]
      "  halt\n"
      "table: .word 10, 20, 30\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(4), 30u);
}

TEST(LoadStore, ByteAndHalfInstructions) {
  TestMachine m(
      "  la r5, data\n"
      "  lbui r3, r5, 0\n"
      "  lhui r4, r5, 0\n"
      "  li r6, 0xFF\n"
      "  sbi r6, r5, 3\n"
      "  lwi r7, r5, 0\n"
      "  halt\n"
      "data: .word 0x11223344\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 0x44u);
  EXPECT_EQ(m.cpu.reg(4), 0x3344u);
  EXPECT_EQ(m.cpu.reg(7), 0xFF223344u);
}

TEST(LoadStore, LoadsAreZeroExtended) {
  TestMachine m(
      "  la r5, data\n"
      "  lbui r3, r5, 0\n"
      "  lhui r4, r5, 0\n"
      "  halt\n"
      "data: .word 0x0000FFFF\n");
  m.run();
  EXPECT_EQ(m.cpu.reg(3), 0xFFu);
  EXPECT_EQ(m.cpu.reg(4), 0xFFFFu);
}

TEST(LoadStore, UnalignedWordAccessUsesByteLanes) {
  // MicroBlaze-style LMB semantics: a word access ignores the low two
  // address bits (they select byte lanes, the BRAM row is the same), so
  // an unaligned lw/sw reads/writes the containing aligned word — it
  // does not trap and it does not assemble a misaligned value.
  TestMachine m(
      "  la r5, buffer\n"
      "  li r3, 0xAABBCCDD\n"
      "  swi r3, r5, 2\n"   // store at buffer+2: hits buffer's word
      "  lwi r4, r5, 2\n"   // load at buffer+2: same aligned word back
      "  lwi r6, r5, 0\n"
      "  halt\n"
      "buffer: .word 0x11111111\n"
      "        .word 0x22222222\n");
  EXPECT_EQ(m.run(), Event::kHalted);
  EXPECT_EQ(m.cpu.reg(4), 0xAABBCCDDu);
  EXPECT_EQ(m.cpu.reg(6), 0xAABBCCDDu);  // buffer+0, same word
  // The neighbouring word is untouched: nothing straddled the boundary.
  EXPECT_EQ(m.cpu.reg(5), m.cpu.reg(5) & ~Addr{3});  // buffer is aligned
  EXPECT_EQ(m.memory.read_word(m.cpu.reg(5) + 4), 0x22222222u);
}

TEST(LoadStore, UnalignedHalfAccessIgnoresBitZero) {
  TestMachine m(
      "  la r5, data\n"
      "  lhui r3, r5, 1\n"  // odd address: same halfword as data+0
      "  lhui r4, r5, 0\n"
      "  halt\n"
      "data: .word 0x11223344\n");
  EXPECT_EQ(m.run(), Event::kHalted);
  EXPECT_EQ(m.cpu.reg(3), m.cpu.reg(4));
  EXPECT_EQ(m.cpu.reg(3), 0x3344u);
}

TEST(LoadStore, UnalignedAccessAtMemoryTopDoesNotTrap) {
  // The bounds check runs on the masked (aligned) address: a word
  // access at 0xFFFE in a 64 KiB BRAM is the word at 0xFFFC — in
  // range — not a 2-byte overhang past the end.
  TestMachine m(
      "  li r5, 0xFFFE\n"
      "  li r3, 0x5A5A5A5A\n"
      "  sw r3, r5, r0\n"
      "  lw r4, r5, r0\n"
      "  halt\n");
  EXPECT_EQ(m.run(), Event::kHalted);
  EXPECT_EQ(m.cpu.reg(4), 0x5A5A5A5Au);
  EXPECT_EQ(m.memory.read_word(0xFFFC), 0x5A5A5A5Au);
}

TEST(LoadStore, OutOfRangeAccessTraps) {
  TestMachine m(
      "  li r5, 0x200000\n"
      "  lwi r3, r5, 0\n"
      "  halt\n");
  EXPECT_EQ(m.run(), Event::kIllegal);
}

TEST(Opb, ProcessorReadsAndWritesPeripheral) {
  TestMachine m(
      "  li r5, 0x80000000\n"
      "  li r3, 42\n"
      "  swi r3, r5, 0\n"
      "  lwi r4, r5, 0\n"
      "  halt\n");
  bus::OpbBus opb;
  opb.map("scratch", 0x80000000u, 64,
          std::make_unique<bus::OpbScratchpad>(16));
  m.cpu.attach_opb(&opb);
  EXPECT_EQ(m.run(), Event::kHalted);
  EXPECT_EQ(m.cpu.reg(4), 42u);
  EXPECT_EQ(opb.transactions(), 2u);
}

TEST(Opb, WaitStatesAreCharged) {
  const char* source =
      "  li r5, 0x80000000\n"
      "  lwi r4, r5, 0\n"
      "  halt\n";
  TestMachine with_opb(source);
  bus::OpbBus opb;
  opb.map("scratch", 0x80000000u, 64,
          std::make_unique<bus::OpbScratchpad>(16));
  with_opb.cpu.attach_opb(&opb);
  with_opb.run();
  EXPECT_EQ(with_opb.cpu.stats().opb_accesses, 1u);
  EXPECT_EQ(with_opb.cpu.stats().opb_wait_cycles, bus::OpbBus::kBusWaitStates);
  // An LMB access of the same shape costs exactly the wait states less.
  TestMachine lmb_only(
      "  la r5, word\n"
      "  lwi r4, r5, 0\n"
      "  halt\n"
      "word: .word 0\n");
  lmb_only.run();
  EXPECT_EQ(with_opb.cpu.stats().cycles,
            lmb_only.cpu.stats().cycles + bus::OpbBus::kBusWaitStates);
}

TEST(Opb, UnmappedAddressTraps) {
  TestMachine m(
      "  li r5, 0x80000000\n"
      "  lwi r4, r5, 0\n"
      "  halt\n");
  bus::OpbBus opb;  // nothing mapped
  m.cpu.attach_opb(&opb);
  EXPECT_EQ(m.run(), Event::kIllegal);
}

}  // namespace
}  // namespace mbcosim::iss
