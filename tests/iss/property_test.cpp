// Property-based ISS tests: random straight-line ALU programs are
// executed on the ISS and compared against a direct host-side evaluation
// of the same operation sequence.
#include <gtest/gtest.h>

#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "iss/test_helpers.hpp"

namespace mbcosim::iss {
namespace {

/// Host-side mirror of the ALU subset used by the generator.
struct HostState {
  Word regs[32] = {};
  bool carry = false;

  void apply(const isa::Instruction& in) {
    using isa::Op;
    const Word a = regs[in.ra];
    const Word b = in.imm_form ? static_cast<Word>(in.imm) : regs[in.rb];
    Word result = 0;
    switch (in.op) {
      case Op::kAdd: {
        const u64 sum = u64(a) + u64(b);
        result = static_cast<Word>(sum);
        carry = (sum >> 32) != 0;
        break;
      }
      case Op::kAddk:
        result = a + b;
        break;
      case Op::kRsubk:
        result = b - a;
        break;
      case Op::kMul:
        result = a * b;
        break;
      case Op::kOr:
        result = a | b;
        break;
      case Op::kAnd:
        result = a & b;
        break;
      case Op::kXor:
        result = a ^ b;
        break;
      case Op::kAndn:
        result = a & ~b;
        break;
      case Op::kBsll:
        result = a << (b & 31);
        break;
      case Op::kBsrl:
        result = a >> (b & 31);
        break;
      case Op::kBsra:
        result = static_cast<Word>(static_cast<i32>(a) >> (b & 31));
        break;
      case Op::kSext8:
        result = sign_extend(a, 8);
        break;
      case Op::kSext16:
        result = sign_extend(a, 16);
        break;
      default:
        FAIL() << "generator produced unexpected op";
    }
    if (in.rd != 0) regs[in.rd] = result;
  }
};

isa::Instruction random_alu_instruction(Rng& rng) {
  using isa::Op;
  static constexpr Op kOps[] = {Op::kAdd,  Op::kAddk, Op::kRsubk, Op::kMul,
                                Op::kOr,   Op::kAnd,  Op::kXor,   Op::kAndn,
                                Op::kBsll, Op::kBsrl, Op::kBsra,  Op::kSext8,
                                Op::kSext16};
  isa::Instruction in;
  in.op = kOps[rng.next_below(std::size(kOps))];
  in.rd = static_cast<u8>(rng.next_below(32));
  in.ra = static_cast<u8>(rng.next_below(32));
  const bool sext = in.op == Op::kSext8 || in.op == Op::kSext16;
  const bool shift = in.op == Op::kBsll || in.op == Op::kBsrl ||
                     in.op == Op::kBsra;
  if (!sext && rng.next_below(2) == 0) {
    in.imm_form = true;
    in.imm = shift ? static_cast<i32>(rng.next_below(32))
                   : static_cast<i32>(rng.next_in(-32768, 32767));
  } else if (!sext) {
    in.rb = static_cast<u8>(rng.next_below(32));
  }
  return in;
}

class RandomAluPrograms : public ::testing::TestWithParam<u64> {};

TEST_P(RandomAluPrograms, IssMatchesHostEvaluation) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    // Build a random straight-line program.
    std::vector<isa::Instruction> body;
    for (int i = 0; i < 60; ++i) body.push_back(random_alu_instruction(rng));

    assembler::Program program;
    // Seed registers r1..r7 with random values via imm pairs.
    HostState host;
    std::string source;
    for (unsigned reg = 1; reg <= 7; ++reg) {
      const Word seed_value = rng.next_u32();
      source += "li r" + std::to_string(reg) + ", " +
                std::to_string(static_cast<i64>(seed_value)) + "\n";
      host.regs[reg] = seed_value;
    }
    for (const auto& in : body) {
      source += isa::disassemble(in) + "\n";
      host.apply(in);
    }
    source += "halt\n";

    testing::TestMachine machine(source);
    ASSERT_EQ(machine.run(), Event::kHalted) << source;
    for (unsigned reg = 0; reg < 32; ++reg) {
      ASSERT_EQ(machine.cpu.reg(reg), host.regs[reg])
          << "r" << reg << " mismatch, seed=" << GetParam()
          << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAluPrograms,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

TEST(Invariants, R0NeverChanges) {
  Rng rng(1234);
  std::string source;
  for (int i = 0; i < 100; ++i) {
    isa::Instruction in = random_alu_instruction(rng);
    in.rd = 0;  // every write targets r0
    source += isa::disassemble(in) + "\n";
  }
  source += "halt\n";
  testing::TestMachine machine(source);
  machine.run();
  EXPECT_EQ(machine.cpu.reg(0), 0u);
}

TEST(Invariants, CycleCountEqualsSumOfLatencies) {
  Rng rng(4321);
  std::string source;
  Cycle expected = 0;
  for (int i = 0; i < 80; ++i) {
    const isa::Instruction in = random_alu_instruction(rng);
    source += isa::disassemble(in) + "\n";
    expected += isa::base_latency(in, false);
  }
  source += "halt\n";
  expected += 3;  // the halting branch
  testing::TestMachine machine(source);
  machine.run();
  EXPECT_EQ(machine.cpu.stats().cycles, expected);
}

}  // namespace
}  // namespace mbcosim::iss
