// Shared fixture for ISS tests: assemble a source snippet, load it, run.
#pragma once

#include <string_view>

#include "asm/assembler.hpp"
#include "fsl/fsl_hub.hpp"
#include "iss/memory.hpp"
#include "iss/processor.hpp"

namespace mbcosim::iss::testing {

struct TestMachine {
  explicit TestMachine(std::string_view source,
                       isa::CpuConfig config = make_default_config())
      : program(assembler::assemble_or_throw(source)),
        memory(64 * 1024),
        cpu(config, memory, &hub) {
    memory.load_program(program);
    cpu.reset(program.entry());
  }

  static isa::CpuConfig make_default_config() {
    isa::CpuConfig config;
    config.has_barrel_shifter = true;
    config.has_multiplier = true;
    config.has_divider = true;
    return config;
  }

  /// Run to completion; returns the final event.
  Event run(Cycle max_cycles = 1'000'000) { return cpu.run(max_cycles); }

  assembler::Program program;
  LmbMemory memory;
  fsl::FslHub hub;
  Processor cpu;
};

}  // namespace mbcosim::iss::testing
