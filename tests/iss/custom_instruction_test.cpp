// Tests for Nios-style custom instructions (paper Section I: "the
// customization of the instruction set").
#include <gtest/gtest.h>

#include <bit>

#include "estimate/estimator.hpp"
#include "iss/test_helpers.hpp"

namespace mbcosim::iss {
namespace {

using testing::TestMachine;

CustomInstruction popcount_unit() {
  CustomInstruction unit;
  unit.name = "popcount";
  unit.compute = [](Word a, Word) {
    return static_cast<Word>(std::popcount(a));
  };
  unit.latency = 2;
  unit.resources = ResourceVec{40, 0, 0};
  return unit;
}

TEST(CustomInstruction, ExecutesRegisteredUnit) {
  TestMachine m(
      "  li r3, 0xF0F01234\n"
      "  cust0 r4, r3, r0\n"
      "  halt\n");
  m.cpu.register_custom_instruction(0, popcount_unit());
  EXPECT_EQ(m.run(), Event::kHalted);
  EXPECT_EQ(m.cpu.reg(4), 13u);
}

TEST(CustomInstruction, TwoOperandUnit) {
  TestMachine m(
      "  li r3, 7\n"
      "  li r4, 9\n"
      "  cust3 r5, r3, r4\n"
      "  halt\n");
  CustomInstruction mac;
  mac.name = "mac";
  mac.compute = [](Word a, Word b) { return a * b + 1; };
  m.cpu.register_custom_instruction(3, mac);
  m.run();
  EXPECT_EQ(m.cpu.reg(5), 64u);
}

TEST(CustomInstruction, LatencyIsCharged) {
  const char* source =
      "  cust0 r4, r3, r0\n"
      "  halt\n";
  TestMachine fast(source);
  CustomInstruction one_cycle = popcount_unit();
  one_cycle.latency = 1;
  fast.cpu.register_custom_instruction(0, one_cycle);
  fast.run();

  TestMachine slow(source);
  CustomInstruction five_cycles = popcount_unit();
  five_cycles.latency = 5;
  slow.cpu.register_custom_instruction(0, five_cycles);
  slow.run();

  EXPECT_EQ(slow.cpu.stats().cycles, fast.cpu.stats().cycles + 4);
}

TEST(CustomInstruction, EmptySlotIsIllegal) {
  TestMachine m("cust5 r4, r3, r0\nhalt\n");
  EXPECT_EQ(m.run(), Event::kIllegal);
}

TEST(CustomInstruction, RegistrationValidation) {
  TestMachine m("halt\n");
  EXPECT_THROW(m.cpu.register_custom_instruction(8, popcount_unit()),
               SimError);
  CustomInstruction no_fn;
  no_fn.name = "empty";
  EXPECT_THROW(m.cpu.register_custom_instruction(0, no_fn), SimError);
  CustomInstruction zero_latency = popcount_unit();
  zero_latency.latency = 0;
  EXPECT_THROW(m.cpu.register_custom_instruction(0, zero_latency), SimError);
}

TEST(CustomInstruction, LookupReturnsRegisteredUnit) {
  TestMachine m("halt\n");
  EXPECT_EQ(m.cpu.custom_instruction(0), nullptr);
  m.cpu.register_custom_instruction(0, popcount_unit());
  ASSERT_NE(m.cpu.custom_instruction(0), nullptr);
  EXPECT_EQ(m.cpu.custom_instruction(0)->name, "popcount");
  EXPECT_EQ(m.cpu.custom_instruction(99), nullptr);
}

TEST(CustomInstruction, R0DestinationDiscarded) {
  TestMachine m(
      "  li r3, 0xFF\n"
      "  cust0 r0, r3, r0\n"
      "  halt\n");
  m.cpu.register_custom_instruction(0, popcount_unit());
  m.run();
  EXPECT_EQ(m.cpu.reg(0), 0u);
}

TEST(CustomInstruction, AssemblerAndDisassemblerAgree) {
  const auto program = assembler::assemble_or_throw("cust7 r1, r2, r3\n");
  EXPECT_EQ(isa::disassemble(program.words[0]), "cust7 r1, r2, r3");
  const auto decoded = isa::decode(program.words[0]);
  EXPECT_EQ(decoded.op, isa::Op::kCustom);
  EXPECT_EQ(decoded.custom_slot, 7);
}

TEST(CustomInstruction, ResourcesFeedEstimator) {
  estimate::SystemDescription system;
  const u32 base = estimate::estimate_system(system).estimated.slices;
  system.custom_instructions.push_back(ResourceVec{40, 0, 1});
  const auto report = estimate::estimate_system(system);
  EXPECT_EQ(report.estimated.slices, base + 40);
  EXPECT_EQ(report.estimated.mult18s, 3u + 1u);
  EXPECT_NE(report.to_string().find("custom instruction"),
            std::string::npos);
}

TEST(CustomInstruction, SpeedsUpPopcountWorkload) {
  // The design trade-off the feature exists for: a software popcount
  // loop vs. one custom instruction.
  const char* kSoftware =
      "  li r3, 0xDEADBEEF\n"
      "  addk r4, r0, r0\n"     // count
      "  li r7, 32\n"
      "sw_loop:\n"
      "  andi r5, r3, 1\n"
      "  addk r4, r4, r5\n"
      "  srl r3, r3\n"
      "  addik r7, r7, -1\n"
      "  bnei r7, sw_loop\n"
      "  halt\n";
  const char* kCustom =
      "  li r3, 0xDEADBEEF\n"
      "  cust0 r4, r3, r0\n"
      "  halt\n";
  TestMachine sw(kSoftware);
  sw.run();
  TestMachine hw(kCustom);
  hw.cpu.register_custom_instruction(0, popcount_unit());
  hw.run();
  EXPECT_EQ(sw.cpu.reg(4), hw.cpu.reg(4));
  EXPECT_GT(sw.cpu.stats().cycles, 10 * hw.cpu.stats().cycles);
}

}  // namespace
}  // namespace mbcosim::iss
