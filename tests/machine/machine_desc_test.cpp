// MachineDesc unit tests: preset constructors, JSON parse/serialize
// round-trips, and the structured error channel — every rejection comes
// back as "[code] message" with a stable bracketed code from
// machine::kDescErrorCodes, never an exception or exit.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "machine/machine_desc.hpp"

namespace mbcosim::machine {
namespace {

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

void expect_parse_error(const std::string& json, const std::string& code) {
  const auto result = MachineDesc::from_json(json);
  ASSERT_FALSE(result.ok()) << "accepted: " << json;
  EXPECT_TRUE(starts_with(result.error(), code))
      << "want prefix " << code << ", got: " << result.error();
}

// ---------------------------------------------------------------- presets

TEST(MachineDesc, SingleCorePresetIsTheLegacyShape) {
  const MachineDesc desc = MachineDesc::single_core("halt\n");
  ASSERT_EQ(desc.cores.size(), 1u);
  EXPECT_EQ(desc.cores[0].name, "cpu0");
  EXPECT_EQ(desc.cores[0].program, "halt\n");
  EXPECT_TRUE(desc.links.empty());
  EXPECT_TRUE(desc.peripherals.empty());
  EXPECT_TRUE(desc.validate().ok);
}

TEST(MachineDesc, ReplicatedNamesCoresFromTheTemplateStem) {
  CoreDesc core_template;
  core_template.program = "halt\n";
  core_template.has_divider = true;
  core_template.predecode = false;

  const MachineDesc plain = MachineDesc::replicated(3, core_template);
  ASSERT_EQ(plain.cores.size(), 3u);
  EXPECT_EQ(plain.cores[0].name, "cpu0");
  EXPECT_EQ(plain.cores[2].name, "cpu2");
  EXPECT_TRUE(plain.cores[1].has_divider);
  EXPECT_FALSE(plain.cores[1].predecode);
  EXPECT_TRUE(plain.validate().ok);

  core_template.name = "node";
  const MachineDesc named = MachineDesc::replicated(2, core_template);
  ASSERT_EQ(named.cores.size(), 2u);
  EXPECT_EQ(named.cores[0].name, "node0");
  EXPECT_EQ(named.cores[1].name, "node1");
}

TEST(MachineDesc, CoreIndexAndFindCore) {
  MachineDesc desc = MachineDesc::single_core("halt\n");
  EXPECT_EQ(desc.core_index("cpu0"), 0u);
  EXPECT_EQ(desc.core_index("ghost"), desc.cores.size());
  EXPECT_NE(desc.find_core("cpu0"), nullptr);
  EXPECT_EQ(desc.find_core("ghost"), nullptr);
}

// ------------------------------------------------------------------ parse

TEST(MachineDesc, ParsesMinimalMachineWithDefaults) {
  const auto result = MachineDesc::from_json(
      R"({"cores": [{"name": "cpu0", "program": "halt\n"}]})");
  ASSERT_TRUE(result.ok()) << result.error();
  const MachineDesc& desc = result.value();
  ASSERT_EQ(desc.cores.size(), 1u);
  EXPECT_EQ(desc.cores[0].program, "halt\n");
  EXPECT_EQ(desc.cores[0].memory_bytes, 64u * 1024u);
  EXPECT_TRUE(desc.cores[0].has_barrel_shifter);
  EXPECT_TRUE(desc.cores[0].has_multiplier);
  EXPECT_FALSE(desc.cores[0].has_divider);
  EXPECT_TRUE(desc.cores[0].predecode);
  EXPECT_EQ(desc.cores[0].exec_tier, iss::ExecTier::kDbt);
  EXPECT_EQ(desc.fifo_depth, 16u);
  EXPECT_EQ(desc.quantum, Cycle{64});
}

TEST(MachineDesc, ParsesExecTierPerCore) {
  const auto result = MachineDesc::from_json(R"({"cores": [
    {"name": "a", "program": "halt\n", "exec_tier": "precise"},
    {"name": "b", "program": "halt\n", "exec_tier": "predecode"},
    {"name": "c", "program": "halt\n", "exec_tier": "dbt"}]})");
  ASSERT_TRUE(result.ok()) << result.error();
  const MachineDesc& desc = result.value();
  ASSERT_EQ(desc.cores.size(), 3u);
  EXPECT_EQ(desc.cores[0].exec_tier, iss::ExecTier::kPrecise);
  EXPECT_EQ(desc.cores[1].exec_tier, iss::ExecTier::kPredecode);
  EXPECT_EQ(desc.cores[2].exec_tier, iss::ExecTier::kDbt);
}

TEST(MachineDesc, ParsesTopologyAndPeripheralParams) {
  const auto result = MachineDesc::from_json(R"({
    "quantum": 32,
    "fifo_depth": 8,
    "cores": [
      {"name": "feeder", "program": "halt\n", "multiplier": false},
      {"name": "worker", "program": "halt\n", "memory_bytes": 4096}
    ],
    "links": [
      {"from": "feeder", "from_channel": 1, "to": "worker", "to_channel": 2}
    ],
    "peripherals": [
      {"core": "worker", "type": "cordic", "channel": 0, "num_pes": 8}
    ]
  })");
  ASSERT_TRUE(result.ok()) << result.error();
  const MachineDesc& desc = result.value();
  EXPECT_EQ(desc.quantum, Cycle{32});
  EXPECT_EQ(desc.fifo_depth, 8u);
  ASSERT_EQ(desc.cores.size(), 2u);
  EXPECT_FALSE(desc.cores[0].has_multiplier);
  EXPECT_EQ(desc.cores[1].memory_bytes, 4096u);
  ASSERT_EQ(desc.links.size(), 1u);
  EXPECT_EQ(desc.links[0].from, "feeder");
  EXPECT_EQ(desc.links[0].from_channel, 1u);
  EXPECT_EQ(desc.links[0].to, "worker");
  EXPECT_EQ(desc.links[0].to_channel, 2u);
  ASSERT_EQ(desc.peripherals.size(), 1u);
  EXPECT_EQ(desc.peripherals[0].type, "cordic");
  ASSERT_EQ(desc.peripherals[0].params.count("num_pes"), 1u);
  EXPECT_EQ(desc.peripherals[0].params.at("num_pes"), 8);
}

TEST(MachineDesc, RoundTripsThroughJson) {
  MachineDesc desc;
  CoreDesc feeder;
  feeder.name = "feeder";
  feeder.program = "# \"quoted\"\n\tput r3, rfsl1\n  halt\n";
  feeder.has_multiplier = false;
  CoreDesc worker;
  worker.name = "worker";
  worker.program_file = "worker.s";
  worker.memory_bytes = 4096;
  worker.has_divider = true;
  worker.predecode = false;
  worker.exec_tier = iss::ExecTier::kPredecode;
  desc.cores = {feeder, worker};
  desc.links = {{"feeder", 1, "worker", 1}};
  PeripheralDesc cordic;
  cordic.core = "worker";
  cordic.type = "cordic";
  cordic.channel = 0;
  cordic.params["num_pes"] = 16;
  desc.peripherals = {cordic};
  desc.fifo_depth = 8;
  desc.quantum = 32;

  const std::string json = desc.to_json();
  const auto reparsed = MachineDesc::from_json(json);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  // Serialization is canonical, so a round-trip reproduces the text
  // exactly — which also proves every field survived.
  EXPECT_EQ(reparsed.value().to_json(), json);
}

// ------------------------------------------------- structured error codes

TEST(MachineDescErrors, JsonSyntax) {
  expect_parse_error("", "[json-syntax]");
  expect_parse_error("{", "[json-syntax]");
  expect_parse_error("{\"cores\": [}", "[json-syntax]");
  expect_parse_error("{} trailing", "[json-syntax]");
  // Floats are rejected up front: machine files are integer-only.
  expect_parse_error(
      R"({"quantum": 1.5, "cores": [{"name": "a", "program": "halt\n"}]})",
      "[json-syntax]");
}

TEST(MachineDescErrors, MissingField) {
  expect_parse_error("{}", "[missing-field]");
  expect_parse_error(R"({"cores": [{"program": "halt\n"}]})",
                     "[missing-field]");
  expect_parse_error(R"({
    "cores": [{"name": "a", "program": "halt\n"}],
    "links": [{"from": "a", "from_channel": 0, "to_channel": 0}]})",
                     "[missing-field]");
}

TEST(MachineDescErrors, BadField) {
  expect_parse_error("[]", "[bad-field]");
  expect_parse_error(R"({"cores": 42})", "[bad-field]");
  expect_parse_error(R"({"cores": [{"name": 7, "program": "halt\n"}]})",
                     "[bad-field]");
  expect_parse_error(
      R"({"cores": [{"name": "a", "program": "halt\n", "predecode": 1}]})",
      "[bad-field]");
  expect_parse_error(R"({
    "cores": [{"name": "a", "program": "halt\n"}],
    "peripherals": [{"core": "a", "type": "cordic", "num_pes": "eight"}]})",
                     "[bad-field]");
}

TEST(MachineDescErrors, BadExecTier) {
  expect_parse_error(
      R"({"cores": [{"name": "a", "program": "halt\n", "exec_tier": "jit"}]})",
      "[bad-exec-tier]");
  // A non-string value is a type error, not a tier-name error.
  expect_parse_error(
      R"({"cores": [{"name": "a", "program": "halt\n", "exec_tier": 2}]})",
      "[bad-field]");
}

TEST(MachineDescErrors, TopologyValidation) {
  expect_parse_error(R"({"cores": []})", "[no-cores]");
  expect_parse_error(R"({"cores": [{"name": "bad name", "program": "x"}]})",
                     "[bad-core-name]");
  expect_parse_error(R"({"cores": [
      {"name": "a", "program": "halt\n"},
      {"name": "a", "program": "halt\n"}]})",
                     "[duplicate-core]");
  expect_parse_error(R"({"cores": [{"name": "a"}]})", "[no-program]");
  expect_parse_error(
      R"({"cores": [{"name": "a", "program": "x", "program_file": "x.s"}]})",
      "[program-conflict]");
  expect_parse_error(
      R"({"cores": [{"name": "a", "program": "x", "memory_bytes": 0}]})",
      "[bad-memory]");
  expect_parse_error(
      R"({"quantum": 0, "cores": [{"name": "a", "program": "x"}]})",
      "[bad-quantum]");
  expect_parse_error(
      R"({"fifo_depth": 0, "cores": [{"name": "a", "program": "x"}]})",
      "[bad-fifo-depth]");
}

TEST(MachineDescErrors, GraphValidation) {
  const char* two_cores = R"("cores": [
      {"name": "a", "program": "halt\n"},
      {"name": "b", "program": "halt\n"}])";
  auto with = [two_cores](const std::string& rest) {
    return "{" + std::string(two_cores) + ", " + rest + "}";
  };
  expect_parse_error(
      with(R"("links": [{"from": "ghost", "from_channel": 0,
                         "to": "b", "to_channel": 0}])"),
      "[unknown-core]");
  expect_parse_error(
      with(R"("peripherals": [{"core": "ghost", "type": "cordic"}])"),
      "[unknown-core]");
  expect_parse_error(
      with(R"("links": [{"from": "a", "from_channel": 8,
                         "to": "b", "to_channel": 0}])"),
      "[channel-range]");
  expect_parse_error(
      with(R"("peripherals": [{"core": "a", "type": "cordic",
                               "channel": 9}])"),
      "[channel-range]");
  expect_parse_error(
      with(R"("links": [{"from": "a", "from_channel": 0,
                         "to": "a", "to_channel": 1}])"),
      "[self-link]");
  // Two links claiming the same writer endpoint, then the same reader.
  expect_parse_error(
      with(R"("links": [
        {"from": "a", "from_channel": 0, "to": "b", "to_channel": 0},
        {"from": "a", "from_channel": 0, "to": "b", "to_channel": 1}])"),
      "[link-conflict]");
  expect_parse_error(
      with(R"("links": [
        {"from": "a", "from_channel": 0, "to": "b", "to_channel": 0},
        {"from": "a", "from_channel": 1, "to": "b", "to_channel": 0}])"),
      "[link-conflict]");
  // A link landing on a channel a peripheral owns is also a conflict.
  expect_parse_error(
      with(R"("peripherals": [{"core": "b", "type": "cordic", "channel": 0}],
           "links": [{"from": "a", "from_channel": 0,
                      "to": "b", "to_channel": 0}])"),
      "[link-conflict]");
  expect_parse_error(
      with(R"("peripherals": [
        {"core": "a", "type": "cordic", "channel": 0},
        {"core": "a", "type": "matmul", "channel": 0}])"),
      "[channel-conflict]");
}

TEST(MachineDescErrors, ValidateCatchesProgrammaticMistakes) {
  // validate() is the same gate from_json runs; programmatic edits that
  // bypass the parser still get structured errors.
  MachineDesc desc = MachineDesc::single_core("halt\n");
  desc.cores[0].memory_bytes = 6;  // not a word multiple
  const Status status = desc.validate();
  ASSERT_FALSE(status.ok);
  EXPECT_TRUE(starts_with(status.message, "[bad-memory]")) << status.message;
}

// ---------------------------------------------------------------- file io

TEST(MachineDescFile, MissingFileIsAStructuredError) {
  const auto result =
      MachineDesc::from_file("/nonexistent/machine/path.json");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(starts_with(result.error(), "[file-io]")) << result.error();
}

TEST(MachineDescFile, RewritesRelativeProgramPaths) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "mbcosim_machine_desc_test";
  fs::create_directories(dir);
  {
    std::ofstream program(dir / "prog.s");
    program << "halt\n";
    std::ofstream machine(dir / "machine.json");
    machine << R"({"cores": [{"name": "cpu0", "program_file": "prog.s"}]})";
  }

  const auto result = MachineDesc::from_file((dir / "machine.json").string());
  ASSERT_TRUE(result.ok()) << result.error();
  const MachineDesc& desc = result.value();
  ASSERT_EQ(desc.cores.size(), 1u);
  // The relative "prog.s" now resolves from anywhere, not just from the
  // machine file's directory.
  EXPECT_EQ(desc.cores[0].program_file, (dir / "prog.s").string());
  std::ifstream check(desc.cores[0].program_file);
  EXPECT_TRUE(check.good());

  fs::remove_all(dir);
}

}  // namespace
}  // namespace mbcosim::machine
