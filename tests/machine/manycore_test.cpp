// Multi-core machine tests: the declarative MachineDesc build path, the
// conservative-quantum parallel engine behind it, and the two promises
// the redesign makes —
//
//   1. determinism: stats and traces are byte-identical no matter how
//      many host workers advance the cores, and
//   2. compatibility: a single-core machine behaves exactly like the
//      legacy Builder shim it replaced.
//
// Also the home of the two-core FSL pipeline golden trace. Regenerate
// with:
//
//   MBCOSIM_REGEN_GOLDEN=1 ./tests/mbcosim_tests --gtest_filter='ManyCore.*'
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/cordic/cordic_reference.hpp"
#include "apps/machine_peripherals.hpp"
#include "apps/matmul/matmul_app.hpp"
#include "core/manycore.hpp"
#include "fault/fault_plan.hpp"
#include "machine/machine_desc.hpp"
#include "obs/jsonl_sink.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::sim {
namespace {

namespace cordic = mbcosim::apps::cordic;

// ------------------------------------------------- two-core FSL pipeline

constexpr const char* kProducerProgram = R"(
start:
  la r21, data
  li r29, 16              # 4 words
  addk r10, r0, r0
loop:
  lw r3, r21, r10
  put r3, rfsl2
  addik r10, r10, 4
  rsub r3, r10, r29
  bnei r3, loop
  halt
data:
  .word 0x00000011
  .word 0x00000022
  .word 0x00000033
  .word 0x00000044
)";

constexpr const char* kConsumerProgram = R"(
start:
  la r28, results
  li r29, 16
  addk r10, r0, r0
loop:
  get r3, rfsl1
  sw r3, r28, r10
  addik r10, r10, 4
  rsub r3, r10, r29
  bnei r3, loop
  halt
results: .space 16
)";

machine::MachineDesc two_core_pipeline() {
  machine::MachineDesc desc;
  machine::CoreDesc producer;
  producer.name = "producer";
  producer.program = kProducerProgram;
  machine::CoreDesc consumer;
  consumer.name = "consumer";
  consumer.program = kConsumerProgram;
  desc.cores = {producer, consumer};
  desc.links = {{"producer", 2, "consumer", 1}};
  desc.quantum = 16;  // several rounds, with cross-quantum blocking
  return desc;
}

/// Build the two-core pipeline with one string-backed JSONL sink per
/// core, run it to completion, and return the concatenated traces
/// (producer first) — the golden-trace payload.
std::string run_traced_pipeline(std::vector<Word>* results = nullptr) {
  auto built = SimSystem::Builder().machine(two_core_pipeline()).build();
  EXPECT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();

  std::ostringstream producer_trace;
  std::ostringstream consumer_trace;
  system.trace_bus(0).add_sink(
      std::make_unique<obs::JsonlSink>(producer_trace));
  system.trace_bus(1).add_sink(
      std::make_unique<obs::JsonlSink>(consumer_trace));

  EXPECT_EQ(system.run(), core::StopReason::kHalted);
  if (results != nullptr) {
    for (u32 i = 0; i < 4; ++i) {
      results->push_back(system.word_on(1, "results", i));
    }
  }
  return producer_trace.str() + consumer_trace.str();
}

TEST(ManyCore, TwoCorePipelineDeliversWords) {
  std::vector<Word> results;
  const std::string trace = run_traced_pipeline(&results);
  ASSERT_FALSE(trace.empty());
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0], 0x11u);
  EXPECT_EQ(results[1], 0x22u);
  EXPECT_EQ(results[2], 0x33u);
  EXPECT_EQ(results[3], 0x44u);
}

TEST(ManyCore, MachineAccessorsDescribeTheTopology) {
  auto built = SimSystem::Builder().machine(two_core_pipeline()).build();
  ASSERT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();

  EXPECT_EQ(system.core_count(), 2u);
  EXPECT_EQ(system.core_name(0), "producer");
  EXPECT_EQ(system.core_name(1), "consumer");
  ASSERT_NE(system.machine_engine(), nullptr);
  EXPECT_EQ(system.machine_desc().links.size(), 1u);

  ASSERT_EQ(system.run(), core::StopReason::kHalted);
  EXPECT_EQ(system.machine_engine()->link_words(), 4u);
  // Per-core stats split the machine aggregate.
  const core::CoSimStats total = system.stats();
  const core::CoSimStats producer = system.core_stats(0);
  const core::CoSimStats consumer = system.core_stats(1);
  EXPECT_EQ(total.instructions,
            producer.instructions + consumer.instructions);
  EXPECT_GT(consumer.fsl_stall_cycles, 0u);
}

TEST(ManyCore, TwoCorePipelineMatchesGoldenTrace) {
  const std::string golden_path =
      std::string(MBCOSIM_TEST_DATA_DIR) + "/machine_trace_golden.jsonl";
  const std::string trace = run_traced_pipeline();
  ASSERT_FALSE(trace.empty());

  if (std::getenv("MBCOSIM_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << trace;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (regenerate with MBCOSIM_REGEN_GOLDEN=1)";
  std::stringstream golden;
  golden << in.rdbuf();

  std::istringstream got_stream(trace);
  std::istringstream want_stream(golden.str());
  std::string got;
  std::string want;
  std::size_t line = 0;
  while (std::getline(want_stream, want)) {
    ++line;
    ASSERT_TRUE(std::getline(got_stream, got))
        << "trace ends early at line " << line;
    ASSERT_EQ(got, want) << "first divergence at line " << line;
  }
  EXPECT_FALSE(std::getline(got_stream, got))
      << "trace has extra lines after line " << line;
}

TEST(ManyCore, RerunsAreByteIdentical) {
  EXPECT_EQ(run_traced_pipeline(), run_traced_pipeline());
}

// ------------------------------------------------------ CORDIC mini farm

// Scaled-down cordic_farm.json (examples/machines/): feeder -> worker
// (4-PE CORDIC pipeline) -> collector, four items in one set, one pass.
constexpr i32 kFarmX[4] = {0x01000000, 0x02000000, 0x01800000, 0x04000000};
constexpr i32 kFarmY[4] = {0x00800000, 0x03000000, 0x00c00000, 0x01000000};

constexpr const char* kFarmFeeder = R"(
start:
  la r21, data_x
  la r22, data_y
  li r29, 16
  addk r10, r0, r0
item_loop:
  lw r3, r21, r10
  put r3, rfsl1
  lw r4, r22, r10
  put r4, rfsl1
  addik r10, r10, 4
  rsub r3, r10, r29
  bnei r3, item_loop
  halt
data_x:
  .word 0x01000000
  .word 0x02000000
  .word 0x01800000
  .word 0x04000000
data_y:
  .word 0x00800000
  .word 0x03000000
  .word 0x00c00000
  .word 0x01000000
)";

constexpr const char* kFarmWorker = R"(
start:
  cput r0, rfsl0          # control word: s0 = 0, single pass
  li r5, 4
send_loop:
  get r3, rfsl1
  put r3, rfsl0
  get r3, rfsl1
  put r3, rfsl0
  put r0, rfsl0           # Z = 0
  addik r5, r5, -1
  bnei r5, send_loop
  li r5, 4
recv_loop:
  get r3, rfsl0           # X out (discarded)
  get r3, rfsl0           # Y residue (discarded)
  get r3, rfsl0           # Z = quotient
  put r3, rfsl2
  addik r5, r5, -1
  bnei r5, recv_loop
  halt
)";

constexpr const char* kFarmCollector = R"(
start:
  la r28, results
  li r29, 16
  addk r10, r0, r0
store_loop:
  get r3, rfsl1
  sw r3, r28, r10
  addik r10, r10, 4
  rsub r3, r10, r29
  bnei r3, store_loop
  halt
results: .space 16
)";

machine::MachineDesc mini_farm() {
  machine::MachineDesc desc;
  machine::CoreDesc feeder;
  feeder.name = "feeder";
  feeder.program = kFarmFeeder;
  machine::CoreDesc worker;
  worker.name = "worker";
  worker.program = kFarmWorker;
  machine::CoreDesc collector;
  collector.name = "collector";
  collector.program = kFarmCollector;
  desc.cores = {feeder, worker, collector};
  desc.links = {{"feeder", 1, "worker", 1}, {"worker", 2, "collector", 1}};
  machine::PeripheralDesc pipeline;
  pipeline.core = "worker";
  pipeline.type = "cordic";
  pipeline.channel = 0;
  pipeline.params["num_pes"] = 4;
  desc.peripherals = {pipeline};
  desc.quantum = 16;
  return desc;
}

struct FarmRun {
  std::vector<std::string> traces;  ///< one JSONL stream per core
  core::CoSimStats stats;
  u64 link_words = 0;
  std::vector<Word> results;
};

FarmRun run_farm(unsigned workers) {
  apps::register_machine_peripherals();
  auto built =
      SimSystem::Builder().machine(mini_farm()).workers(workers).build();
  EXPECT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();

  std::vector<std::unique_ptr<std::ostringstream>> streams;
  for (std::size_t i = 0; i < system.core_count(); ++i) {
    streams.push_back(std::make_unique<std::ostringstream>());
    system.trace_bus(i).add_sink(
        std::make_unique<obs::JsonlSink>(*streams.back()));
  }

  EXPECT_EQ(system.run(), core::StopReason::kHalted);

  FarmRun run;
  for (const auto& stream : streams) run.traces.push_back(stream->str());
  run.stats = system.stats();
  run.link_words = system.machine_engine()->link_words();
  for (u32 i = 0; i < 4; ++i) {
    run.results.push_back(system.word_on(2, "results", i));
  }
  return run;
}

TEST(ManyCore, FarmQuotientsMatchTheBitExactReference) {
  const FarmRun run = run_farm(1);
  ASSERT_EQ(run.results.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    cordic::CordicState state;
    state.x = kFarmX[i];
    state.y = kFarmY[i];
    const i32 expected = cordic::cordic_iterate(state, 0, 4).z;
    EXPECT_EQ(static_cast<i32>(run.results[i]), expected) << "item " << i;
  }
  // 8 words feeder -> worker, 4 quotients worker -> collector.
  EXPECT_EQ(run.link_words, 12u);
}

TEST(ManyCore, ResultsAreIndependentOfWorkerCount) {
  const FarmRun baseline = run_farm(1);
  for (const unsigned workers : {2u, 4u}) {
    const FarmRun run = run_farm(workers);
    EXPECT_EQ(run.results, baseline.results) << workers << " workers";
    EXPECT_EQ(run.link_words, baseline.link_words) << workers << " workers";
    EXPECT_EQ(run.stats.cycles, baseline.stats.cycles)
        << workers << " workers";
    EXPECT_EQ(run.stats.instructions, baseline.stats.instructions)
        << workers << " workers";
    EXPECT_EQ(run.stats.fsl_stall_cycles, baseline.stats.fsl_stall_cycles)
        << workers << " workers";
    ASSERT_EQ(run.traces.size(), baseline.traces.size());
    for (std::size_t i = 0; i < run.traces.size(); ++i) {
      EXPECT_EQ(run.traces[i], baseline.traces[i])
          << workers << " workers, core " << i << " trace diverged";
    }
  }
}

// ----------------------------------------------------- single-core shim

constexpr const char* kShimProgram = R"(
start:
  li r3, 10
  addk r4, r0, r0
loop:
  addk r4, r4, r3
  addik r3, r3, -1
  bnei r3, loop
  la r5, result
  swi r4, r5, 0
  halt
result: .space 4
)";

TEST(ManyCore, SingleCoreMachineMatchesTheLegacyBuilder) {
  auto legacy = SimSystem::Builder().program(kShimProgram).build();
  ASSERT_TRUE(legacy.ok()) << legacy.error();
  auto described = SimSystem::Builder()
                       .machine(machine::MachineDesc::single_core(kShimProgram))
                       .build();
  ASSERT_TRUE(described.ok()) << described.error();

  auto run_traced = [](SimSystem system) {
    std::ostringstream trace;
    system.trace_bus().add_sink(std::make_unique<obs::JsonlSink>(trace));
    EXPECT_EQ(system.run(), core::StopReason::kHalted);
    EXPECT_EQ(system.word_on(0, "result"), 55u);
    return std::make_pair(trace.str(), system.stats());
  };
  const auto [legacy_trace, legacy_stats] =
      run_traced(std::move(legacy).value());
  const auto [machine_trace, machine_stats] =
      run_traced(std::move(described).value());

  // The shim promise: byte-identical trace (no core origins, same
  // channel names) and identical statistics.
  ASSERT_FALSE(legacy_trace.empty());
  EXPECT_EQ(machine_trace, legacy_trace);
  EXPECT_EQ(machine_stats.cycles, legacy_stats.cycles);
  EXPECT_EQ(machine_stats.instructions, legacy_stats.instructions);
  // A single-core machine needs no machine engine at all.
  auto rebuilt = SimSystem::Builder()
                     .machine(machine::MachineDesc::single_core(kShimProgram))
                     .build();
  ASSERT_TRUE(rebuilt.ok());
  SimSystem single = std::move(rebuilt).value();
  EXPECT_EQ(single.machine_engine(), nullptr);
}

// ------------------------------------- halt attribution & debugger stepping

TEST(ManyCore, HaltIsAttributedToTheLastCoreToStop) {
  auto built = SimSystem::Builder().machine(two_core_pipeline()).build();
  ASSERT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();

  EXPECT_EQ(system.run(), core::StopReason::kHalted);
  // The producer drains its four words and halts long before the
  // consumer finishes storing them: the machine's halt belongs to the
  // consumer, not to core 0 by default (the old behavior this pins).
  EXPECT_EQ(system.stop_core(), 1u);
  EXPECT_LT(system.core_stats(0).cycles, system.core_stats(1).cycles);
}

TEST(ManyCore, CycleLimitStopNamesNoCore) {
  auto built = SimSystem::Builder().machine(two_core_pipeline()).build();
  ASSERT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();

  EXPECT_EQ(system.run(32), core::StopReason::kCycleLimit);
  EXPECT_EQ(system.stop_core(), core::MachineStop::kNoCore);
}

TEST(ManyCore, SteppingAHaltedCoreIsANoOp) {
  auto built = SimSystem::Builder().machine(two_core_pipeline()).build();
  ASSERT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();
  core::ManyCoreEngine* engine = system.machine_engine();
  ASSERT_NE(engine, nullptr);

  ASSERT_EQ(system.run(), core::StopReason::kHalted);
  const core::CoSimStats before = system.stats();
  const u64 link_words = engine->link_words();

  // Every core has halted; a debugger single-step of any of them must
  // report the halt without re-executing it (the regression: the step
  // used to run the halted processor again and skew its counters).
  for (std::size_t index = 0; index < engine->core_count(); ++index) {
    const iss::StepResult step = engine->debug_step(index);
    EXPECT_EQ(step.event, iss::Event::kHalted) << "core " << index;
    EXPECT_EQ(step.cycles, 0u) << "core " << index;
  }
  const core::CoSimStats after = system.stats();
  EXPECT_EQ(after.cycles, before.cycles);
  EXPECT_EQ(after.instructions, before.instructions);
  EXPECT_EQ(engine->link_words(), link_words);
}

// ------------------------------------------------ execution-tier identity

// The execution tiers must be invisible to the machine: identical
// CoSimStats, memory results and link traffic whichever tier every core
// runs on and however many host workers advance the quantum rounds.

struct TierRun {
  core::CoSimStats stats;
  u64 link_words = 0;
  std::vector<Word> results;
  iss::DbtStats dbt;
};

constexpr iss::ExecTier kAllTiers[] = {
    iss::ExecTier::kPrecise, iss::ExecTier::kPredecode, iss::ExecTier::kDbt};

void expect_tier_run_identical(const TierRun& run, const TierRun& baseline,
                               iss::ExecTier tier, unsigned workers) {
  const std::string label = std::string(iss::to_string(tier)) + " tier, " +
                            std::to_string(workers) + " workers";
  EXPECT_EQ(run.results, baseline.results) << label;
  EXPECT_EQ(run.link_words, baseline.link_words) << label;
  EXPECT_EQ(run.stats.cycles, baseline.stats.cycles) << label;
  EXPECT_EQ(run.stats.instructions, baseline.stats.instructions) << label;
  EXPECT_EQ(run.stats.fsl_stall_cycles, baseline.stats.fsl_stall_cycles)
      << label;
}

TierRun run_farm_with_tier(unsigned workers, iss::ExecTier tier) {
  apps::register_machine_peripherals();
  machine::MachineDesc desc = mini_farm();
  for (auto& core : desc.cores) core.exec_tier = tier;
  auto built =
      SimSystem::Builder().machine(std::move(desc)).workers(workers).build();
  EXPECT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();
  EXPECT_EQ(system.run(), core::StopReason::kHalted);

  TierRun run;
  run.stats = system.stats();
  run.link_words = system.machine_engine()->link_words();
  run.dbt = system.dbt_stats();
  for (u32 i = 0; i < 4; ++i) {
    run.results.push_back(system.word_on(2, "results", i));
  }
  return run;
}

TEST(ManyCore, FarmTierIdentityAcrossWorkerCounts) {
  const TierRun baseline = run_farm_with_tier(1, iss::ExecTier::kPrecise);
  ASSERT_EQ(baseline.results.size(), 4u);
  for (const iss::ExecTier tier : kAllTiers) {
    for (const unsigned workers : {1u, 2u, 8u}) {
      expect_tier_run_identical(run_farm_with_tier(workers, tier), baseline,
                                tier, workers);
    }
  }
}

// A 2-core matmul machine (each core drives its own block-multiplier
// peripheral through the paper's streaming schedule) is hot enough to
// cross the dbt promotion threshold — the tier must actually engage and
// still be invisible in the statistics at every worker count.
TierRun run_matmul_machine(unsigned workers, iss::ExecTier tier) {
  namespace matmul = mbcosim::apps::matmul;
  apps::register_machine_peripherals();
  const matmul::Matrix a = matmul::make_matrix(8, 3);
  const matmul::Matrix b = matmul::make_matrix(8, 7);

  machine::CoreDesc core_template;
  core_template.name = "pe";
  core_template.program = matmul::hw_driver_program(a, b, 4);
  core_template.exec_tier = tier;
  machine::MachineDesc desc =
      machine::MachineDesc::replicated(2, core_template);
  for (const machine::CoreDesc& core : desc.cores) {
    machine::PeripheralDesc mac;
    mac.core = core.name;
    mac.type = "matmul";
    mac.channel = 0;
    mac.params["block_size"] = 4;
    desc.peripherals.push_back(mac);
  }
  desc.quantum = 64;

  auto built =
      SimSystem::Builder().machine(std::move(desc)).workers(workers).build();
  EXPECT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();
  EXPECT_EQ(system.run(), core::StopReason::kHalted);

  TierRun run;
  run.stats = system.stats();
  run.link_words = system.machine_engine()->link_words();
  run.dbt = system.dbt_stats();
  const matmul::Matrix expected = matmul::multiply_reference(a, b);
  for (std::size_t core = 0; core < 2; ++core) {
    for (u32 i = 0; i < 8 * 8; ++i) {
      run.results.push_back(system.word_on(core, "mat_c", i));
      EXPECT_EQ(static_cast<i32>(run.results.back()),
                expected.data[i])
          << "core " << core << " element " << i;
    }
  }
  return run;
}

TEST(ManyCore, MatmulMachineTierIdentityAcrossWorkerCounts) {
  const TierRun baseline = run_matmul_machine(1, iss::ExecTier::kPrecise);
  ASSERT_EQ(baseline.results.size(), 2u * 8 * 8);
  EXPECT_EQ(baseline.dbt.blocks_translated, 0u);  // precise tier: no dbt
  for (const iss::ExecTier tier : kAllTiers) {
    for (const unsigned workers : {1u, 2u, 8u}) {
      expect_tier_run_identical(run_matmul_machine(workers, tier), baseline,
                                tier, workers);
    }
  }
  // The driver loops are hot: the dbt tier must actually have engaged.
  const TierRun dbt = run_matmul_machine(2, iss::ExecTier::kDbt);
  EXPECT_GE(dbt.dbt.blocks_translated, 2u);  // at least one block per core
  EXPECT_GT(dbt.dbt.dbt_instructions, 0u);
}

// ------------------------------------------------- deadlock & build errors

TEST(ManyCore, StarvedConsumerIsAMachineDeadlock) {
  machine::MachineDesc desc = two_core_pipeline();
  desc.cores[0].program = "halt\n";  // producer never feeds the link
  auto built = SimSystem::Builder()
                   .machine(std::move(desc))
                   .deadlock_threshold(2000)
                   .build();
  ASSERT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();

  EXPECT_EQ(system.run(), core::StopReason::kDeadlock);
  EXPECT_EQ(system.stop_core(), 1u);
  const auto diagnosis = system.deadlock_diagnosis();
  ASSERT_TRUE(diagnosis.has_value());
  EXPECT_NE(diagnosis->channel.find("hw_to_mb1"), std::string::npos)
      << diagnosis->channel;
}

TEST(ManyCore, BuilderRejectsMachinePlusLegacySetters) {
  auto with_program = SimSystem::Builder()
                          .machine(two_core_pipeline())
                          .program("halt\n")
                          .build();
  ASSERT_FALSE(with_program.ok());
  EXPECT_NE(with_program.error().find("mutually exclusive"),
            std::string::npos)
      << with_program.error();

  auto with_memory = SimSystem::Builder()
                         .machine(two_core_pipeline())
                         .memory_bytes(4096)
                         .build();
  ASSERT_FALSE(with_memory.ok());
  EXPECT_NE(with_memory.error().find("memory_bytes()"), std::string::npos)
      << with_memory.error();
}

TEST(ManyCore, BuilderRejectsOutOfRangeCoreReferences) {
  auto bad_gdb =
      SimSystem::Builder().machine(two_core_pipeline()).gdb_core(5).build();
  ASSERT_FALSE(bad_gdb.ok());
  EXPECT_NE(bad_gdb.error().find("gdb_core 5 is out of range"),
            std::string::npos)
      << bad_gdb.error();

  fault::FaultPlan plan;
  plan.trigger_value = 10;
  plan.core = 5;
  auto bad_fault =
      SimSystem::Builder().machine(two_core_pipeline()).fault(plan).build();
  ASSERT_FALSE(bad_fault.ok());
  EXPECT_NE(bad_fault.error().find("fault plan targets core 5"),
            std::string::npos)
      << bad_fault.error();

  fault::FaultPlan pc_plan;
  pc_plan.trigger = fault::TriggerKind::kPc;
  auto pc_fault = SimSystem::Builder()
                      .machine(two_core_pipeline())
                      .fault(pc_plan)
                      .build();
  ASSERT_FALSE(pc_fault.ok());
  EXPECT_NE(pc_fault.error().find("pc-triggered"), std::string::npos)
      << pc_fault.error();
}

TEST(ManyCore, BuilderRejectsUnknownPeripheralTypes) {
  machine::MachineDesc desc = two_core_pipeline();
  machine::PeripheralDesc fft;
  fft.core = "producer";
  fft.type = "fft";
  fft.channel = 3;
  desc.peripherals = {fft};
  auto built = SimSystem::Builder().machine(std::move(desc)).build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.error().find("unknown peripheral type 'fft'"),
            std::string::npos)
      << built.error();
}

}  // namespace
}  // namespace mbcosim::sim
