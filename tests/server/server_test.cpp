// Socket-free tests of the simulation-server subsystem: session
// lifecycle error paths (every failure a stable "[srv-*]" code),
// admission control, batch-equivalence of the hosted run, the streaming
// hub's bounded-queue backpressure accounting, HTTP request parsing
// over deterministic loopback transports, and the tier-invariant dbt
// counter schema in metrics snapshots.
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "machine/machine_desc.hpp"
#include "obs/metrics.hpp"
#include "rsp/transport.hpp"
#include "server/http.hpp"
#include "server/service.hpp"
#include "server/session.hpp"
#include "server/session_manager.hpp"
#include "server/stream_hub.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::server {
namespace {

constexpr const char* kHaltProgram = R"(
start:
  addik r3, r0, 7
  halt
)";

SessionConfig halting_config() {
  SessionConfig config;
  config.desc = machine::MachineDesc::single_core(kHaltProgram);
  config.control_quantum = 16;
  return config;
}

[[nodiscard]] bool wait_until_idle(Session& session) {
  for (int i = 0; i < 5000; ++i) {
    if (session.state() == SessionState::kIdle) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// ------------------------------------------------ session lifecycle

TEST(ServerSession, LifecycleErrorPathsUseStableCodes) {
  SessionManager::Limits limits;
  limits.max_sessions = 4;
  limits.worker_budget = 8;
  SessionManager manager(limits);

  // Unknown id: never created.
  auto missing = manager.find(42);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().rfind("[srv-unknown-session]", 0), 0u)
      << missing.error();

  auto created = manager.create(halting_config());
  ASSERT_TRUE(created.ok()) << created.error();
  std::shared_ptr<Session> session = created.value();
  const u64 id = session->id();

  // Checkpoint before the session ever ran.
  auto early = session->checkpoint();
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.error().rfind("[srv-never-ran]", 0), 0u) << early.error();

  // Pause with no run in progress.
  EXPECT_EQ(session->pause().rfind("[srv-not-running]", 0), 0u);

  // A real run; afterwards checkpoint succeeds.
  EXPECT_EQ(session->run_async(Cycle{1} << 30), "");
  ASSERT_TRUE(wait_until_idle(*session));
  auto image = session->checkpoint();
  ASSERT_TRUE(image.ok()) << image.error();
  EXPECT_FALSE(image.value().empty());

  // Kill through the manager; a second kill of the same id is unknown.
  EXPECT_EQ(manager.kill(id), "");
  EXPECT_EQ(manager.kill(id).rfind("[srv-unknown-session]", 0), 0u);
  EXPECT_EQ(manager.find(id).error().rfind("[srv-unknown-session]", 0), 0u);

  // Run-after-kill on a handle a client still holds.
  const std::string after_kill = session->run_async(Cycle{1} << 30);
  EXPECT_EQ(after_kill.rfind("[srv-running]", 0), 0u) << after_kill;
  EXPECT_NE(after_kill.find("killed"), std::string::npos) << after_kill;
  // Session::kill itself is idempotent (the structured error above is
  // the *manager's* double-DELETE answer).
  EXPECT_EQ(session->kill(), "");
}

TEST(ServerSession, KillWhileRunningIsTerminalAndRejectsNewRuns) {
  // Kill races a worker mid-run: it must take the worker handle under
  // the session mutex, join it, and leave the session terminally killed
  // — a run_async slipping in during the teardown window must not spawn
  // a fresh worker that would flip the state back to idle.
  SessionConfig config;
  config.desc = machine::MachineDesc::single_core(
      "loop: bri loop2\nloop2: bri loop\n");
  config.control_quantum = 16;
  SessionManager manager({});
  auto created = manager.create(std::move(config));
  ASSERT_TRUE(created.ok()) << created.error();
  std::shared_ptr<Session> session = created.value();
  ASSERT_EQ(session->run_async(Cycle{1} << 40), "");
  EXPECT_EQ(session->kill(), "");
  EXPECT_EQ(session->state(), SessionState::kKilled);
  const std::string rerun = session->run_async(Cycle{1} << 40);
  EXPECT_EQ(rerun.rfind("[srv-running]", 0), 0u) << rerun;
  EXPECT_NE(rerun.find("killed"), std::string::npos) << rerun;
  EXPECT_EQ(session->kill(), "");  // idempotent
}

TEST(ServerSession, AdmissionControlRejectsWithSrvBusy) {
  {
    SessionManager::Limits limits;
    limits.max_sessions = 1;
    limits.worker_budget = 8;
    SessionManager manager(limits);
    auto first = manager.create(halting_config());
    ASSERT_TRUE(first.ok()) << first.error();
    auto second = manager.create(halting_config());
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().rfind("[srv-busy]", 0), 0u) << second.error();
    EXPECT_NE(second.error().find("session limit"), std::string::npos);
    // Killing the only session frees its slot.
    EXPECT_EQ(manager.kill(first.value()->id()), "");
    EXPECT_TRUE(manager.create(halting_config()).ok());
  }
  {
    SessionManager::Limits limits;
    limits.max_sessions = 8;
    limits.worker_budget = 1;  // one single-core session fills it
    SessionManager manager(limits);
    ASSERT_TRUE(manager.create(halting_config()).ok());
    auto rejected = manager.create(halting_config());
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.error().rfind("[srv-busy]", 0), 0u)
        << rejected.error();
    EXPECT_NE(rejected.error().find("worker budget"), std::string::npos);
  }
}

TEST(ServerSession, BadMachineIsAStructuredError) {
  SessionConfig config;
  config.desc = machine::MachineDesc::single_core("not an opcode at all\n");
  SessionManager manager({});
  auto built = manager.create(std::move(config));
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().rfind("[srv-bad-machine]", 0), 0u) << built.error();
}

// ------------------------------------------- batch equivalence (stats)

TEST(ServerSession, HostedRunMatchesBatchStatsAndMetrics) {
  SessionConfig config = halting_config();
  config.metrics = true;
  SessionManager manager({});
  auto created = manager.create(config);
  ASSERT_TRUE(created.ok()) << created.error();
  std::shared_ptr<Session> session = created.value();
  ASSERT_EQ(session->run_async(Cycle{1} << 30), "");
  ASSERT_TRUE(wait_until_idle(*session));

  auto batch_built = sim::SimSystem::Builder()
                         .machine(config.desc)
                         .metrics()
                         .build();
  ASSERT_TRUE(batch_built.ok()) << batch_built.error();
  sim::SimSystem batch = std::move(batch_built).value();
  ASSERT_EQ(batch.run(), core::StopReason::kHalted);

  auto stats = session->stats_page();
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats.value(), stats_text(batch));
  auto metrics = session->metrics_page();
  ASSERT_TRUE(metrics.ok()) << metrics.error();
  EXPECT_EQ(metrics.value(), batch.metrics_snapshot().to_string());
}

// --------------------------------------------------- dbt counter schema

TEST(ServerSession, DbtCountersAppearAsZerosBelowDbtTier) {
  // A precise-tier core never translates a block, but its metrics
  // snapshot still carries the dbt.* keys (as zeros) so snapshots diff
  // cleanly tier-against-tier.
  machine::MachineDesc desc = machine::MachineDesc::single_core(kHaltProgram);
  desc.cores[0].exec_tier = iss::ExecTier::kPrecise;
  auto built = sim::SimSystem::Builder().machine(desc).metrics().build();
  ASSERT_TRUE(built.ok()) << built.error();
  sim::SimSystem system = std::move(built).value();
  EXPECT_TRUE(system.metrics_snapshot().empty());  // pre-run: still empty
  ASSERT_EQ(system.run(), core::StopReason::kHalted);

  const obs::MetricsSnapshot snapshot = system.metrics_snapshot();
  for (const char* key :
       {"dbt.blocks_translated", "dbt.block_dispatches",
        "dbt.smc_retirements", "dbt.fast_path_instructions"}) {
    const auto it = snapshot.counters.find(key);
    ASSERT_NE(it, snapshot.counters.end()) << key;
    EXPECT_EQ(it->second, 0u) << key;
  }

  // Same machine at the dbt tier: identical counter-key schema.
  machine::MachineDesc dbt_desc =
      machine::MachineDesc::single_core(kHaltProgram);
  dbt_desc.cores[0].exec_tier = iss::ExecTier::kDbt;
  auto dbt_built =
      sim::SimSystem::Builder().machine(dbt_desc).metrics().build();
  ASSERT_TRUE(dbt_built.ok()) << dbt_built.error();
  sim::SimSystem dbt_system = std::move(dbt_built).value();
  ASSERT_EQ(dbt_system.run(), core::StopReason::kHalted);
  const obs::MetricsSnapshot dbt_snapshot = dbt_system.metrics_snapshot();
  ASSERT_EQ(snapshot.counters.size(), dbt_snapshot.counters.size());
  auto lhs = snapshot.counters.begin();
  auto rhs = dbt_snapshot.counters.begin();
  for (; lhs != snapshot.counters.end(); ++lhs, ++rhs) {
    EXPECT_EQ(lhs->first, rhs->first);
  }
}

// ----------------------------------------------------- streaming hub

TEST(ServerStreamHub, DropOldestIsBoundedAndAccounted) {
  StreamHub hub(4);
  auto subscription = hub.subscribe();
  for (int i = 0; i < 10; ++i) hub.publish("line" + std::to_string(i));

  // The gap is reported first, then the surviving (newest) lines.
  auto first = subscription->next(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "{\"stream\":\"dropped\",\"count\":6,\"total\":6}");
  for (int i = 6; i < 10; ++i) {
    auto line = subscription->next(0);
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(*line, "line" + std::to_string(i));
  }
  EXPECT_FALSE(subscription->next(0).has_value());  // drained
  EXPECT_EQ(subscription->dropped_total(), 6u);
  EXPECT_FALSE(subscription->finished());  // stream still open

  hub.publish("tail");
  hub.close();
  auto tail = subscription->next(0);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(*tail, "tail");
  EXPECT_TRUE(subscription->finished());

  // Subscribing after close yields a born-finished stream.
  EXPECT_TRUE(hub.subscribe()->finished());
}

TEST(ServerStreamHub, SubscribersSeeOnlyLinesAfterSubscription) {
  StreamHub hub(16);
  hub.publish("before");
  auto late = hub.subscribe();
  hub.publish("after");
  auto line = late->next(0);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "after");
  EXPECT_FALSE(late->next(0).has_value());
  EXPECT_EQ(late->dropped_total(), 0u);
}

TEST(ServerSession, RunStreamsStateAndMetricsRecords) {
  SessionManager manager({});
  auto created = manager.create(halting_config());
  ASSERT_TRUE(created.ok()) << created.error();
  std::shared_ptr<Session> session = created.value();
  auto subscription = session->subscribe();
  ASSERT_EQ(session->run_async(Cycle{1} << 30), "");
  ASSERT_TRUE(wait_until_idle(*session));
  EXPECT_EQ(manager.kill(session->id()), "");

  std::vector<std::string> lines;
  while (auto line = subscription->next(0)) lines.push_back(*line);
  EXPECT_TRUE(subscription->finished());
  ASSERT_GE(lines.size(), 4u);
  EXPECT_NE(lines.front().find("\"state\":\"running\""), std::string::npos)
      << lines.front();
  bool saw_metrics = false;
  bool saw_halted = false;
  for (const std::string& line : lines) {
    if (line.find("\"stream\":\"metrics\"") != std::string::npos) {
      saw_metrics = true;
    }
    if (line.find("\"stop\":\"halted\"") != std::string::npos) {
      saw_halted = true;
    }
  }
  EXPECT_TRUE(saw_metrics);
  EXPECT_TRUE(saw_halted);
  EXPECT_NE(lines.back().find("\"state\":\"killed\""), std::string::npos)
      << lines.back();
}

// -------------------------------------------------------- HTTP layer

/// Serves a pre-baked byte stream at most `limit` bytes per recv() call
/// and then stays open and silent — the shape of a real TCP socket
/// delivering a large body: many small reads, each returning promptly
/// with data, with no EOF afterwards.
class TrickleTransport final : public rsp::Transport {
 public:
  TrickleTransport(std::string bytes, std::size_t limit)
      : bytes_(std::move(bytes)), limit_(limit) {}

  bool send(std::string_view) override { return true; }

  std::string recv(int /*timeout_ms*/) override {
    const std::string out = bytes_.substr(pos_, limit_);
    pos_ = std::min(bytes_.size(), pos_ + limit_);
    return out;
  }

  [[nodiscard]] bool closed() const override { return false; }

 private:
  std::string bytes_;
  std::size_t limit_;
  std::size_t pos_ = 0;
};

TEST(ServerHttp, ReadRequestSurvivesLargeBodyInSmallRecvSlices) {
  // Regression: the read deadline must bound *idle* time, not the
  // number of recv() calls — a 64KB body arriving 100 bytes at a time
  // takes ~650 reads, far more than timeout_ms/slice if every read
  // were charged against the budget.
  const std::string body(64 * 1024, 'x');
  const std::string request_text =
      "POST /sessions/1/restore HTTP/1.1\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  TrickleTransport transport(request_text, 100);
  auto request = read_request(transport, 1000);
  ASSERT_TRUE(request.ok()) << request.error();
  EXPECT_EQ(request.value().body, body);
}

TEST(ServerHttp, ReadRequestTimesOutOnSilentOpenPeer) {
  // The header promises a body that never arrives while the peer stays
  // connected: the idle budget runs out with a structured timeout.
  TrickleTransport transport("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n",
                             4096);
  auto request = read_request(transport, 200);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.error().rfind("[srv-bad-request]", 0), 0u)
      << request.error();
  EXPECT_NE(request.error().find("timed out reading body"), std::string::npos)
      << request.error();
}

TEST(ServerHttp, ReadRequestParsesMethodTargetHeadersBody) {
  auto [server_side, client_side] = rsp::make_loopback();
  ASSERT_TRUE(client_side->send("POST /sessions/7/run?x=1 HTTP/1.1\r\n"
                                "Host: localhost\r\n"
                                "Content-Length: 17\r\n"
                                "\r\n"
                                "{\"max_cycles\":64}"));
  auto request = read_request(*server_side, 1000);
  ASSERT_TRUE(request.ok()) << request.error();
  EXPECT_EQ(request.value().method, "POST");
  EXPECT_EQ(request.value().target, "/sessions/7/run?x=1");
  EXPECT_EQ(request.value().path, "/sessions/7/run");
  EXPECT_EQ(request.value().headers.at("host"), "localhost");
  EXPECT_EQ(request.value().body, "{\"max_cycles\":64}");
}

TEST(ServerHttp, ReadRequestRejectsGarbageAndTruncation) {
  {
    auto [server_side, client_side] = rsp::make_loopback();
    ASSERT_TRUE(client_side->send("this is not http\r\n\r\n"));
    auto request = read_request(*server_side, 200);
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.error().rfind("[srv-bad-request]", 0), 0u)
        << request.error();
  }
  {
    // Declared body never arrives: the read times out structurally.
    auto [server_side, client_side] = rsp::make_loopback();
    ASSERT_TRUE(client_side->send("POST /x HTTP/1.1\r\n"
                                  "Content-Length: 100\r\n\r\nshort"));
    client_side.reset();  // peer goes away mid-body
    auto request = read_request(*server_side, 200);
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.error().rfind("[srv-bad-request]", 0), 0u)
        << request.error();
  }
  {
    // A connection that closes without a byte is dropped silently.
    auto [server_side, client_side] = rsp::make_loopback();
    client_side.reset();
    auto request = read_request(*server_side, 200);
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.error(), "[closed]");
  }
}

TEST(ServerService, ErrorCodesMapToHttpStatuses) {
  EXPECT_EQ(status_for_error("[srv-unknown-session] no session 9"), 404);
  EXPECT_EQ(status_for_error("[srv-busy] worker budget exhausted"), 503);
  EXPECT_EQ(status_for_error("[srv-running] session is running"), 409);
  EXPECT_EQ(status_for_error("[srv-not-running] no run in progress"), 409);
  EXPECT_EQ(status_for_error("[srv-never-ran] checkpoint requires"), 409);
  EXPECT_EQ(status_for_error("[srv-bad-request] truncated"), 400);
  EXPECT_EQ(status_for_error("[srv-bad-machine] [no-cores] empty"), 400);
  EXPECT_EQ(status_for_error("[srv-debug] listen failed"), 500);
  EXPECT_EQ(status_for_error("unprefixed"), 500);
}

}  // namespace
}  // namespace mbcosim::server
