// Socket-free tests of the simulation-server subsystem: session
// lifecycle error paths (every failure a stable "[srv-*]" code),
// admission control, batch-equivalence of the hosted run, the streaming
// hub's bounded-queue backpressure accounting, HTTP request parsing
// over deterministic loopback transports, the tier-invariant dbt
// counter schema in metrics snapshots, and the durability layer:
// journal crash-recovery (byte-identical resume, corrupt-tail
// fallback), watchdog deadlines, deadlock mapping, keep-alive
// connections and graceful drain.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "machine/machine_desc.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/metrics.hpp"
#include "rsp/transport.hpp"
#include "server/http.hpp"
#include "server/journal.hpp"
#include "server/service.hpp"
#include "server/session.hpp"
#include "server/session_manager.hpp"
#include "server/stream_hub.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::server {
namespace {

constexpr const char* kHaltProgram = R"(
start:
  addik r3, r0, 7
  halt
)";

SessionConfig halting_config() {
  SessionConfig config;
  config.desc = machine::MachineDesc::single_core(kHaltProgram);
  config.control_quantum = 16;
  return config;
}

[[nodiscard]] bool wait_until_idle(Session& session) {
  for (int i = 0; i < 5000; ++i) {
    if (session.state() == SessionState::kIdle) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// ------------------------------------------------ session lifecycle

TEST(ServerSession, LifecycleErrorPathsUseStableCodes) {
  SessionManager::Limits limits;
  limits.max_sessions = 4;
  limits.worker_budget = 8;
  SessionManager manager(limits);

  // Unknown id: never created.
  auto missing = manager.find(42);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().rfind("[srv-unknown-session]", 0), 0u)
      << missing.error();

  auto created = manager.create(halting_config());
  ASSERT_TRUE(created.ok()) << created.error();
  std::shared_ptr<Session> session = created.value();
  const u64 id = session->id();

  // Checkpoint before the session ever ran.
  auto early = session->checkpoint();
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.error().rfind("[srv-never-ran]", 0), 0u) << early.error();

  // Pause with no run in progress.
  EXPECT_EQ(session->pause().rfind("[srv-not-running]", 0), 0u);

  // A real run; afterwards checkpoint succeeds.
  EXPECT_EQ(session->run_async(Cycle{1} << 30), "");
  ASSERT_TRUE(wait_until_idle(*session));
  auto image = session->checkpoint();
  ASSERT_TRUE(image.ok()) << image.error();
  EXPECT_FALSE(image.value().empty());

  // Kill through the manager; a second kill of the same id is unknown.
  EXPECT_EQ(manager.kill(id), "");
  EXPECT_EQ(manager.kill(id).rfind("[srv-unknown-session]", 0), 0u);
  EXPECT_EQ(manager.find(id).error().rfind("[srv-unknown-session]", 0), 0u);

  // Run-after-kill on a handle a client still holds.
  const std::string after_kill = session->run_async(Cycle{1} << 30);
  EXPECT_EQ(after_kill.rfind("[srv-running]", 0), 0u) << after_kill;
  EXPECT_NE(after_kill.find("killed"), std::string::npos) << after_kill;
  // Session::kill itself is idempotent (the structured error above is
  // the *manager's* double-DELETE answer).
  EXPECT_EQ(session->kill(), "");
}

TEST(ServerSession, KillWhileRunningIsTerminalAndRejectsNewRuns) {
  // Kill races a worker mid-run: it must take the worker handle under
  // the session mutex, join it, and leave the session terminally killed
  // — a run_async slipping in during the teardown window must not spawn
  // a fresh worker that would flip the state back to idle.
  SessionConfig config;
  config.desc = machine::MachineDesc::single_core(
      "loop: bri loop2\nloop2: bri loop\n");
  config.control_quantum = 16;
  SessionManager manager({});
  auto created = manager.create(std::move(config));
  ASSERT_TRUE(created.ok()) << created.error();
  std::shared_ptr<Session> session = created.value();
  ASSERT_EQ(session->run_async(Cycle{1} << 40), "");
  EXPECT_EQ(session->kill(), "");
  EXPECT_EQ(session->state(), SessionState::kKilled);
  const std::string rerun = session->run_async(Cycle{1} << 40);
  EXPECT_EQ(rerun.rfind("[srv-running]", 0), 0u) << rerun;
  EXPECT_NE(rerun.find("killed"), std::string::npos) << rerun;
  EXPECT_EQ(session->kill(), "");  // idempotent
}

TEST(ServerSession, AdmissionControlRejectsWithSrvBusy) {
  {
    SessionManager::Limits limits;
    limits.max_sessions = 1;
    limits.worker_budget = 8;
    SessionManager manager(limits);
    auto first = manager.create(halting_config());
    ASSERT_TRUE(first.ok()) << first.error();
    auto second = manager.create(halting_config());
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().rfind("[srv-busy]", 0), 0u) << second.error();
    EXPECT_NE(second.error().find("session limit"), std::string::npos);
    // Killing the only session frees its slot.
    EXPECT_EQ(manager.kill(first.value()->id()), "");
    EXPECT_TRUE(manager.create(halting_config()).ok());
  }
  {
    SessionManager::Limits limits;
    limits.max_sessions = 8;
    limits.worker_budget = 1;  // one single-core session fills it
    SessionManager manager(limits);
    ASSERT_TRUE(manager.create(halting_config()).ok());
    auto rejected = manager.create(halting_config());
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.error().rfind("[srv-busy]", 0), 0u)
        << rejected.error();
    EXPECT_NE(rejected.error().find("worker budget"), std::string::npos);
  }
}

TEST(ServerSession, BadMachineIsAStructuredError) {
  SessionConfig config;
  config.desc = machine::MachineDesc::single_core("not an opcode at all\n");
  SessionManager manager({});
  auto built = manager.create(std::move(config));
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().rfind("[srv-bad-machine]", 0), 0u) << built.error();
}

// ------------------------------------------- batch equivalence (stats)

TEST(ServerSession, HostedRunMatchesBatchStatsAndMetrics) {
  SessionConfig config = halting_config();
  config.metrics = true;
  SessionManager manager({});
  auto created = manager.create(config);
  ASSERT_TRUE(created.ok()) << created.error();
  std::shared_ptr<Session> session = created.value();
  ASSERT_EQ(session->run_async(Cycle{1} << 30), "");
  ASSERT_TRUE(wait_until_idle(*session));

  auto batch_built = sim::SimSystem::Builder()
                         .machine(config.desc)
                         .metrics()
                         .build();
  ASSERT_TRUE(batch_built.ok()) << batch_built.error();
  sim::SimSystem batch = std::move(batch_built).value();
  ASSERT_EQ(batch.run(), core::StopReason::kHalted);

  auto stats = session->stats_page();
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats.value(), stats_text(batch));
  auto metrics = session->metrics_page();
  ASSERT_TRUE(metrics.ok()) << metrics.error();
  EXPECT_EQ(metrics.value(), batch.metrics_snapshot().to_string());
}

// --------------------------------------------------- dbt counter schema

TEST(ServerSession, DbtCountersAppearAsZerosBelowDbtTier) {
  // A precise-tier core never translates a block, but its metrics
  // snapshot still carries the dbt.* keys (as zeros) so snapshots diff
  // cleanly tier-against-tier.
  machine::MachineDesc desc = machine::MachineDesc::single_core(kHaltProgram);
  desc.cores[0].exec_tier = iss::ExecTier::kPrecise;
  auto built = sim::SimSystem::Builder().machine(desc).metrics().build();
  ASSERT_TRUE(built.ok()) << built.error();
  sim::SimSystem system = std::move(built).value();
  EXPECT_TRUE(system.metrics_snapshot().empty());  // pre-run: still empty
  ASSERT_EQ(system.run(), core::StopReason::kHalted);

  const obs::MetricsSnapshot snapshot = system.metrics_snapshot();
  for (const char* key :
       {"dbt.blocks_translated", "dbt.block_dispatches",
        "dbt.smc_retirements", "dbt.fast_path_instructions"}) {
    const auto it = snapshot.counters.find(key);
    ASSERT_NE(it, snapshot.counters.end()) << key;
    EXPECT_EQ(it->second, 0u) << key;
  }

  // Same machine at the dbt tier: identical counter-key schema.
  machine::MachineDesc dbt_desc =
      machine::MachineDesc::single_core(kHaltProgram);
  dbt_desc.cores[0].exec_tier = iss::ExecTier::kDbt;
  auto dbt_built =
      sim::SimSystem::Builder().machine(dbt_desc).metrics().build();
  ASSERT_TRUE(dbt_built.ok()) << dbt_built.error();
  sim::SimSystem dbt_system = std::move(dbt_built).value();
  ASSERT_EQ(dbt_system.run(), core::StopReason::kHalted);
  const obs::MetricsSnapshot dbt_snapshot = dbt_system.metrics_snapshot();
  ASSERT_EQ(snapshot.counters.size(), dbt_snapshot.counters.size());
  auto lhs = snapshot.counters.begin();
  auto rhs = dbt_snapshot.counters.begin();
  for (; lhs != snapshot.counters.end(); ++lhs, ++rhs) {
    EXPECT_EQ(lhs->first, rhs->first);
  }
}

// ----------------------------------------------------- streaming hub

TEST(ServerStreamHub, DropOldestIsBoundedAndAccounted) {
  StreamHub hub(4);
  auto subscription = hub.subscribe();
  for (int i = 0; i < 10; ++i) hub.publish("line" + std::to_string(i));

  // The gap is reported first, then the surviving (newest) lines.
  auto first = subscription->next(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "{\"stream\":\"dropped\",\"count\":6,\"total\":6}");
  for (int i = 6; i < 10; ++i) {
    auto line = subscription->next(0);
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(*line, "line" + std::to_string(i));
  }
  EXPECT_FALSE(subscription->next(0).has_value());  // drained
  EXPECT_EQ(subscription->dropped_total(), 6u);
  EXPECT_FALSE(subscription->finished());  // stream still open

  hub.publish("tail");
  hub.close();
  auto tail = subscription->next(0);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(*tail, "tail");
  EXPECT_TRUE(subscription->finished());

  // Subscribing after close yields a born-finished stream.
  EXPECT_TRUE(hub.subscribe()->finished());
}

TEST(ServerStreamHub, SubscribersSeeOnlyLinesAfterSubscription) {
  StreamHub hub(16);
  hub.publish("before");
  auto late = hub.subscribe();
  hub.publish("after");
  auto line = late->next(0);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "after");
  EXPECT_FALSE(late->next(0).has_value());
  EXPECT_EQ(late->dropped_total(), 0u);
}

TEST(ServerSession, RunStreamsStateAndMetricsRecords) {
  SessionManager manager({});
  auto created = manager.create(halting_config());
  ASSERT_TRUE(created.ok()) << created.error();
  std::shared_ptr<Session> session = created.value();
  auto subscription = session->subscribe();
  ASSERT_EQ(session->run_async(Cycle{1} << 30), "");
  ASSERT_TRUE(wait_until_idle(*session));
  EXPECT_EQ(manager.kill(session->id()), "");

  std::vector<std::string> lines;
  while (auto line = subscription->next(0)) lines.push_back(*line);
  EXPECT_TRUE(subscription->finished());
  ASSERT_GE(lines.size(), 4u);
  EXPECT_NE(lines.front().find("\"state\":\"running\""), std::string::npos)
      << lines.front();
  bool saw_metrics = false;
  bool saw_halted = false;
  for (const std::string& line : lines) {
    if (line.find("\"stream\":\"metrics\"") != std::string::npos) {
      saw_metrics = true;
    }
    if (line.find("\"stop\":\"halted\"") != std::string::npos) {
      saw_halted = true;
    }
  }
  EXPECT_TRUE(saw_metrics);
  EXPECT_TRUE(saw_halted);
  EXPECT_NE(lines.back().find("\"state\":\"killed\""), std::string::npos)
      << lines.back();
}

// -------------------------------------------------------- HTTP layer

/// Serves a pre-baked byte stream at most `limit` bytes per recv() call
/// and then stays open and silent — the shape of a real TCP socket
/// delivering a large body: many small reads, each returning promptly
/// with data, with no EOF afterwards.
class TrickleTransport final : public rsp::Transport {
 public:
  TrickleTransport(std::string bytes, std::size_t limit)
      : bytes_(std::move(bytes)), limit_(limit) {}

  bool send(std::string_view) override { return true; }

  std::string recv(int /*timeout_ms*/) override {
    const std::string out = bytes_.substr(pos_, limit_);
    pos_ = std::min(bytes_.size(), pos_ + limit_);
    return out;
  }

  [[nodiscard]] bool closed() const override { return false; }

 private:
  std::string bytes_;
  std::size_t limit_;
  std::size_t pos_ = 0;
};

TEST(ServerHttp, ReadRequestSurvivesLargeBodyInSmallRecvSlices) {
  // Regression: the read deadline must bound *idle* time, not the
  // number of recv() calls — a 64KB body arriving 100 bytes at a time
  // takes ~650 reads, far more than timeout_ms/slice if every read
  // were charged against the budget.
  const std::string body(64 * 1024, 'x');
  const std::string request_text =
      "POST /sessions/1/restore HTTP/1.1\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  TrickleTransport transport(request_text, 100);
  auto request = read_request(transport, 1000);
  ASSERT_TRUE(request.ok()) << request.error();
  EXPECT_EQ(request.value().body, body);
}

TEST(ServerHttp, ReadRequestTimesOutOnSilentOpenPeer) {
  // The header promises a body that never arrives while the peer stays
  // connected: the idle budget runs out with a structured timeout.
  TrickleTransport transport("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n",
                             4096);
  auto request = read_request(transport, 200);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.error().rfind("[srv-bad-request]", 0), 0u)
      << request.error();
  EXPECT_NE(request.error().find("timed out reading body"), std::string::npos)
      << request.error();
}

TEST(ServerHttp, ReadRequestParsesMethodTargetHeadersBody) {
  auto [server_side, client_side] = rsp::make_loopback();
  ASSERT_TRUE(client_side->send("POST /sessions/7/run?x=1 HTTP/1.1\r\n"
                                "Host: localhost\r\n"
                                "Content-Length: 17\r\n"
                                "\r\n"
                                "{\"max_cycles\":64}"));
  auto request = read_request(*server_side, 1000);
  ASSERT_TRUE(request.ok()) << request.error();
  EXPECT_EQ(request.value().method, "POST");
  EXPECT_EQ(request.value().target, "/sessions/7/run?x=1");
  EXPECT_EQ(request.value().path, "/sessions/7/run");
  EXPECT_EQ(request.value().headers.at("host"), "localhost");
  EXPECT_EQ(request.value().body, "{\"max_cycles\":64}");
}

TEST(ServerHttp, ReadRequestRejectsGarbageAndTruncation) {
  {
    auto [server_side, client_side] = rsp::make_loopback();
    ASSERT_TRUE(client_side->send("this is not http\r\n\r\n"));
    auto request = read_request(*server_side, 200);
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.error().rfind("[srv-bad-request]", 0), 0u)
        << request.error();
  }
  {
    // Declared body never arrives: the read times out structurally.
    auto [server_side, client_side] = rsp::make_loopback();
    ASSERT_TRUE(client_side->send("POST /x HTTP/1.1\r\n"
                                  "Content-Length: 100\r\n\r\nshort"));
    client_side.reset();  // peer goes away mid-body
    auto request = read_request(*server_side, 200);
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.error().rfind("[srv-bad-request]", 0), 0u)
        << request.error();
  }
  {
    // A connection that closes without a byte is dropped silently.
    auto [server_side, client_side] = rsp::make_loopback();
    client_side.reset();
    auto request = read_request(*server_side, 200);
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.error(), "[closed]");
  }
}

TEST(ServerService, ErrorCodesMapToHttpStatuses) {
  EXPECT_EQ(status_for_error("[srv-unknown-session] no session 9"), 404);
  EXPECT_EQ(status_for_error("[srv-busy] worker budget exhausted"), 503);
  EXPECT_EQ(status_for_error("[srv-running] session is running"), 409);
  EXPECT_EQ(status_for_error("[srv-not-running] no run in progress"), 409);
  EXPECT_EQ(status_for_error("[srv-never-ran] checkpoint requires"), 409);
  EXPECT_EQ(status_for_error("[srv-bad-request] truncated"), 400);
  EXPECT_EQ(status_for_error("[srv-bad-machine] [no-cores] empty"), 400);
  EXPECT_EQ(status_for_error("[srv-debug] listen failed"), 500);
  EXPECT_EQ(status_for_error("[srv-draining] no new sessions"), 503);
  EXPECT_EQ(status_for_error("[srv-journal-io] cannot write"), 500);
  EXPECT_EQ(status_for_error("unprefixed"), 500);
}

// --------------------------------------------- keep-alive connections

[[nodiscard]] std::string recv_until(rsp::Transport& wire,
                                     const std::string& marker,
                                     std::string& accumulated) {
  const auto start = std::chrono::steady_clock::now();
  while (accumulated.find(marker) == std::string::npos) {
    accumulated += wire.recv(50);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (wire.closed() ||
        std::chrono::duration_cast<std::chrono::seconds>(elapsed).count() >
            30) {
      break;
    }
  }
  return accumulated;
}

TEST(ServerHttp, KeepAliveServesMultipleRequestsPerConnection) {
  // Three pipelined requests in one byte stream — the loopback
  // transport never waits, so the later requests must already be
  // buffered (and must survive the carry across read_request calls).
  // The first two opt into keep-alive, the third does not and closes
  // the connection.
  auto [server_side, client_side] = rsp::make_loopback();
  ASSERT_TRUE(client_side->send(
      "GET /a HTTP/1.1\r\nConnection: keep-alive\r\n\r\n"
      "POST /b HTTP/1.1\r\nConnection: Keep-Alive\r\n"
      "Content-Length: 4\r\n\r\nbody"
      "GET /c HTTP/1.1\r\n\r\n"));
  std::thread connection([transport = std::move(server_side)] {
    serve_connection(*transport,
                     [](const HttpRequest& request,
                        HttpResponseWriter& writer) {
                       writer.respond(200, "text/plain",
                                      "echo:" + request.path + ":" +
                                          request.body + "\n");
                     });
  });
  connection.join();  // the loop exited on the non-keep-alive request

  std::string received;
  recv_until(*client_side, "echo:/c", received);
  EXPECT_NE(received.find("echo:/a:\n"), std::string::npos) << received;
  EXPECT_NE(received.find("echo:/b:body\n"), std::string::npos) << received;
  EXPECT_NE(received.find("echo:/c:\n"), std::string::npos) << received;
  // The first two responses advertise keep-alive, the last one close.
  EXPECT_NE(received.find("Connection: keep-alive"), std::string::npos)
      << received;
  const std::size_t last =
      received.rfind("Connection:");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(received.substr(last, 17), "Connection: close") << received;
}

TEST(ServerHttp, MalformedRequestEndsAKeepAliveConnection) {
  auto [server_side, client_side] = rsp::make_loopback();
  ASSERT_TRUE(client_side->send(
      "GET /a HTTP/1.1\r\nConnection: keep-alive\r\n\r\n"
      "this is not http\r\n\r\n"));
  std::thread connection([transport = std::move(server_side)] {
    serve_connection(*transport,
                     [](const HttpRequest&, HttpResponseWriter& writer) {
                       writer.respond(200, "text/plain", "ok\n");
                     });
  });
  connection.join();  // the 400 terminated the loop
  std::string received;
  recv_until(*client_side, "[srv-bad-request]", received);
  EXPECT_NE(received.find("ok\n"), std::string::npos) << received;
  EXPECT_NE(received.find("400 Bad Request"), std::string::npos) << received;
}

// ------------------------------------------- durability & supervision

namespace fs = std::filesystem;

/// ~1.2k-cycle countdown with an architectural result; long enough for
/// several journal checkpoints at ckpt_every=200 and control_quantum=100.
constexpr const char* kSumProgram = R"(
start:
  li r3, 200
  addk r4, r0, r0
loop:
  addk r4, r4, r3
  addik r3, r3, -1
  bnei r3, loop
  halt
)";

constexpr const char* kSpinProgram = "loop: bri loop2\nloop2: bri loop\n";

[[nodiscard]] std::string fresh_state_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

[[nodiscard]] SessionConfig durable_config() {
  SessionConfig config;
  config.desc = machine::MachineDesc::single_core(kSumProgram);
  config.control_quantum = 100;
  config.ckpt_every = 200;
  config.metrics = true;
  config.trace = true;
  return config;
}

struct BatchGolden {
  std::string stats;
  std::string metrics;
  std::string trace;
};

/// The uninterrupted batch run every recovery test compares against:
/// same machine, metrics on, the same disassembling JSONL trace sink a
/// journaled session attaches.
[[nodiscard]] BatchGolden golden_run(const machine::MachineDesc& desc) {
  auto built = sim::SimSystem::Builder().machine(desc).metrics().build();
  EXPECT_TRUE(built.ok()) << built.error();
  sim::SimSystem system = std::move(built).value();
  std::ostringstream trace;
  auto sink = std::make_unique<obs::JsonlSink>(trace);
  sink->set_disassembler([](Addr, Word raw) { return isa::disassemble(raw); });
  system.trace_bus(0).add_sink(std::move(sink));
  EXPECT_EQ(system.run(), core::StopReason::kHalted);
  return {stats_text(system), system.metrics_snapshot().to_string(),
          trace.str()};
}

[[nodiscard]] std::string read_file_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

[[nodiscard]] Cycle parse_cycles(const std::string& info) {
  const std::size_t pos = info.find("\"cycles\":");
  if (pos == std::string::npos) return 0;
  return static_cast<Cycle>(std::strtoull(info.c_str() + pos + 9, nullptr, 10));
}

[[nodiscard]] bool wait_until_state(Session& session, SessionState want) {
  for (int i = 0; i < 30'000; ++i) {
    if (session.state() == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(ServerJournal, RecoveryResumesByteIdenticalToBatch) {
  const std::string dir = fresh_state_dir("srv_journal_recovery");
  const BatchGolden want = golden_run(durable_config().desc);
  u64 id = 0;

  {
    auto opened = JournalStore::open(dir);
    ASSERT_TRUE(opened.ok()) << opened.error();
    std::unique_ptr<JournalStore> store = std::move(opened).value();
    SessionManager manager({});
    manager.attach_journal(store.get());
    auto created = manager.create(durable_config());
    ASSERT_TRUE(created.ok()) << created.error();
    id = created.value()->id();
    ASSERT_EQ(created.value()->run_async(600), "");
    ASSERT_TRUE(wait_until_idle(*created.value()));
    // Scope exit without kill: the journal stays on disk, exactly as a
    // kill -9 at this point would leave it.
  }

  auto reopened = JournalStore::open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.error();
  std::unique_ptr<JournalStore> store = std::move(reopened).value();
  SessionManager manager({});
  manager.attach_journal(store.get());
  const SessionManager::RecoveryReport report = manager.recover();
  ASSERT_EQ(report.recovered, 1u);

  auto found = manager.find(id);
  ASSERT_TRUE(found.ok()) << found.error();
  std::shared_ptr<Session> session = found.value();
  EXPECT_NE(session->info_json().find("\"recovered_from_cycle\":600"),
            std::string::npos)
      << session->info_json();

  ASSERT_EQ(session->run_async(Cycle{1} << 30), "");
  ASSERT_TRUE(wait_until_idle(*session));

  auto stats = session->stats_page();
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats.value(), want.stats);
  auto metrics = session->metrics_page();
  ASSERT_TRUE(metrics.ok()) << metrics.error();
  EXPECT_EQ(metrics.value(), want.metrics);
  // The journaled trace — pre-crash prefix plus post-recovery suffix —
  // is byte-identical to the uninterrupted batch trace.
  const std::string trace_path =
      dir + "/session-" + std::to_string(id) + "/trace-0.jsonl";
  EXPECT_EQ(read_file_text(trace_path), want.trace);
  EXPECT_EQ(manager.kill(id), "");
  // DELETE removed the journal directory.
  EXPECT_FALSE(fs::exists(dir + "/session-" + std::to_string(id)));
}

TEST(ServerJournal, CorruptNewestCheckpointFallsBackToOlderOne) {
  const std::string dir = fresh_state_dir("srv_journal_corrupt");
  const BatchGolden want = golden_run(durable_config().desc);
  u64 id = 0;

  {
    auto opened = JournalStore::open(dir);
    ASSERT_TRUE(opened.ok()) << opened.error();
    std::unique_ptr<JournalStore> store = std::move(opened).value();
    SessionManager manager({});
    manager.attach_journal(store.get());
    auto created = manager.create(durable_config());
    ASSERT_TRUE(created.ok()) << created.error();
    id = created.value()->id();
    ASSERT_EQ(created.value()->run_async(600), "");
    ASSERT_TRUE(wait_until_idle(*created.value()));
  }

  // Flip one payload byte in the newest checkpoint record — a torn
  // write the atomic-rename discipline cannot see because the damage
  // happened after the rename (bad disk, truncation by the crash).
  const std::string session_dir = dir + "/session-" + std::to_string(id);
  std::string newest;
  for (const fs::directory_entry& entry : fs::directory_iterator(session_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0 && (newest.empty() || name > newest)) {
      newest = name;
    }
  }
  ASSERT_FALSE(newest.empty());
  {
    std::string bytes = read_file_text(session_dir + "/" + newest);
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() / 2] =
        static_cast<char>(static_cast<unsigned char>(bytes[bytes.size() / 2]) ^
                          0x20u);
    std::ofstream out(session_dir + "/" + newest,
                      std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  auto reopened = JournalStore::open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.error();
  std::unique_ptr<JournalStore> store = std::move(reopened).value();
  SessionManager manager({});
  manager.attach_journal(store.get());
  const SessionManager::RecoveryReport report = manager.recover();
  ASSERT_EQ(report.recovered, 1u);
  bool logged_corruption = false;
  for (const std::string& line : report.log) {
    logged_corruption |=
        line.find("[srv-journal-corrupt]") != std::string::npos;
  }
  EXPECT_TRUE(logged_corruption) << "skip reason not logged";

  // The fallback is the previous checkpoint (cycle 400, not 600) — and
  // replaying from there still lands on the exact batch end state.
  auto found = manager.find(id);
  ASSERT_TRUE(found.ok()) << found.error();
  std::shared_ptr<Session> session = found.value();
  EXPECT_NE(session->info_json().find("\"recovered_from_cycle\":400"),
            std::string::npos)
      << session->info_json();
  ASSERT_EQ(session->run_async(Cycle{1} << 30), "");
  ASSERT_TRUE(wait_until_idle(*session));
  auto stats = session->stats_page();
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats.value(), want.stats);
  auto metrics = session->metrics_page();
  ASSERT_TRUE(metrics.ok()) << metrics.error();
  EXPECT_EQ(metrics.value(), want.metrics);
  EXPECT_EQ(read_file_text(dir + "/session-" + std::to_string(id) +
                           "/trace-0.jsonl"),
            want.trace);
  EXPECT_EQ(manager.kill(id), "");
}

TEST(ServerJournal, ConfigJsonRoundTripsExactly) {
  SessionConfig config = durable_config();
  config.deadline_ms = 1234;
  config.max_cycles = 777;
  config.workers = 3;
  const std::string encoded = session_config_to_json(config);
  auto parsed = common::json::parse(encoded);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_TRUE(parsed.value().is_object());
  auto machine = machine::MachineDesc::from_value(
      parsed.value().object().at("machine"));
  ASSERT_TRUE(machine.ok()) << machine.error();
  auto decoded = session_config_from_json(
      parsed.value().object(), std::move(machine).value(),
      SessionConfig{}.control_quantum);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(session_config_to_json(decoded.value()), encoded);
}

TEST(ServerSupervision, WallClockDeadlineKillsAndReleasesBudget) {
  SessionManager::Limits limits;
  limits.max_sessions = 8;
  limits.worker_budget = 1;
  SessionManager manager(limits);

  SessionConfig config;
  config.desc = machine::MachineDesc::single_core(kSpinProgram);
  config.control_quantum = 2000;
  config.deadline_ms = 50;
  auto created = manager.create(std::move(config));
  ASSERT_TRUE(created.ok()) << created.error();
  std::shared_ptr<Session> session = created.value();
  ASSERT_EQ(session->run_async(Cycle{1} << 40), "");

  // The watchdog flags the overrun; the worker kills at a boundary.
  ASSERT_TRUE(wait_until_state(*session, SessionState::kKilled));
  const std::string info = session->info_json();
  EXPECT_NE(info.find("[srv-deadline]"), std::string::npos) << info;
  EXPECT_NE(info.find("wall-clock deadline exceeded"), std::string::npos)
      << info;

  // The expired session stays visible in the pool (clients read the
  // structured stop state) but its worker budget is already released:
  // a follow-up admission under the 1-worker budget succeeds.
  ASSERT_TRUE(manager.find(session->id()).ok());
  auto next = manager.create(halting_config());
  EXPECT_TRUE(next.ok()) << next.error();
}

TEST(ServerSupervision, CycleBudgetKillsAtTheCap) {
  SessionManager manager({});
  SessionConfig config;
  config.desc = machine::MachineDesc::single_core(kSpinProgram);
  config.control_quantum = 100;
  config.max_cycles = 500;
  auto created = manager.create(std::move(config));
  ASSERT_TRUE(created.ok()) << created.error();
  std::shared_ptr<Session> session = created.value();
  ASSERT_EQ(session->run_async(Cycle{1} << 40), "");
  ASSERT_TRUE(wait_until_state(*session, SessionState::kKilled));
  const std::string info = session->info_json();
  EXPECT_NE(info.find("[srv-deadline] cycle budget exhausted"),
            std::string::npos)
      << info;
  // The run stopped at the cap (modulo one instruction straddling the
  // boundary), not at the next control quantum past it.
  const Cycle cycles = parse_cycles(info);
  EXPECT_GE(cycles, 500u) << info;
  EXPECT_LT(cycles, 600u) << info;
}

TEST(ServerSupervision, DeadlockMapsToStructuredState) {
  SessionManager manager({});
  SessionConfig config;
  // A blocking FSL read with no hardware attached can never complete;
  // the quantum exceeds the engine's 100k-cycle deadlock threshold so
  // the heuristic fires inside one chunk.
  config.desc = machine::MachineDesc::single_core("get r4, rfsl0\nhalt\n");
  config.control_quantum = 150'000;
  auto created = manager.create(std::move(config));
  ASSERT_TRUE(created.ok()) << created.error();
  std::shared_ptr<Session> session = created.value();
  ASSERT_EQ(session->run_async(Cycle{1} << 30), "");
  ASSERT_TRUE(wait_until_idle(*session));
  const std::string info = session->info_json();
  EXPECT_NE(info.find("[srv-deadlock]"), std::string::npos) << info;
  EXPECT_NE(info.find("core cpu0"), std::string::npos) << info;
}

TEST(ServerJournal, DrainCheckpointsAndRecoveryResumes) {
  const std::string dir = fresh_state_dir("srv_journal_drain");
  u64 id = 0;
  Cycle drained_at = 0;

  {
    auto opened = JournalStore::open(dir);
    ASSERT_TRUE(opened.ok()) << opened.error();
    std::unique_ptr<JournalStore> store = std::move(opened).value();
    SessionManager manager({});
    manager.attach_journal(store.get());
    SessionConfig config;
    config.desc = machine::MachineDesc::single_core(kSpinProgram);
    config.control_quantum = 1000;
    config.ckpt_every = 0;  // checkpoint only when the run stops
    auto created = manager.create(std::move(config));
    ASSERT_TRUE(created.ok()) << created.error();
    std::shared_ptr<Session> session = created.value();
    id = session->id();
    auto subscription = session->subscribe();
    ASSERT_EQ(session->run_async(Cycle{1} << 40), "");
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    manager.drain(10'000);

    // The stream announced the drain before closing.
    bool saw_draining = false;
    while (auto line = subscription->next(0)) {
      saw_draining |= line->find("\"stream\":\"draining\"") !=
                      std::string::npos;
    }
    EXPECT_TRUE(saw_draining);
    EXPECT_TRUE(subscription->finished());
    EXPECT_EQ(session->state(), SessionState::kKilled);
    drained_at = parse_cycles(session->info_json());
    EXPECT_GT(drained_at, 0u);
  }

  auto reopened = JournalStore::open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.error();
  std::unique_ptr<JournalStore> store = std::move(reopened).value();
  SessionManager manager({});
  manager.attach_journal(store.get());
  const SessionManager::RecoveryReport report = manager.recover();
  ASSERT_EQ(report.recovered, 1u);
  auto found = manager.find(id);
  ASSERT_TRUE(found.ok()) << found.error();
  std::shared_ptr<Session> session = found.value();
  EXPECT_EQ(session->state(), SessionState::kIdle);
  EXPECT_NE(session->info_json().find("\"recovered_from_cycle\":" +
                                      std::to_string(drained_at)),
            std::string::npos)
      << session->info_json();
  // And it runs on from exactly where the drain stopped it.
  ASSERT_EQ(session->run_async(drained_at + 5000), "");
  ASSERT_TRUE(wait_until_idle(*session));
  const Cycle resumed = parse_cycles(session->info_json());
  EXPECT_GE(resumed, drained_at + 5000) << session->info_json();
  EXPECT_LT(resumed, drained_at + 6000) << session->info_json();
  EXPECT_EQ(manager.kill(id), "");
}

}  // namespace
}  // namespace mbcosim::server
