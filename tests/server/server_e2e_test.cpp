// Simulation-server end-to-end tests over real TCP: an in-process
// HttpServer+Service pool hosting concurrent sessions on mixed
// execution tiers, exercised by a scripted HTTP/1.1 client. Proves the
// service promise — everything the server computes is byte-identical
// to a batch mbcsim-style run of the same machine: stats pages,
// metrics pages, streamed trace events, and a session restored from a
// checkpoint that travelled over the wire. Also the slow-client
// telemetry test: a subscriber that stops reading loses old lines (the
// per-client queue is bounded) and sees the loss accounted in-stream.
// Runs under the `server_tcp` ctest label (excluded from tier-1's
// socket-free default set).
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/machine_peripherals.hpp"
#include "common/json.hpp"
#include "isa/isa.hpp"
#include "iss/exec_tier.hpp"
#include "machine/machine_desc.hpp"
#include "obs/jsonl_sink.hpp"
#include "rsp/transport.hpp"
#include "rsp_test_client.hpp"
#include "server/http.hpp"
#include "server/service.hpp"
#include "server/session.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::server {
namespace {

constexpr int kDeadlineMs = 60'000;

// ------------------------------------------------ scripted HTTP client

struct HttpReply {
  int status = 0;
  std::map<std::string, std::string> headers;  // keys lower-cased
  std::string body;
};

std::string dechunk(const std::string& in) {
  std::string out;
  std::size_t pos = 0;
  while (pos < in.size()) {
    const std::size_t eol = in.find("\r\n", pos);
    if (eol == std::string::npos) break;
    const std::size_t size =
        std::strtoul(in.substr(pos, eol - pos).c_str(), nullptr, 16);
    pos = eol + 2;
    if (size == 0) break;
    out += in.substr(pos, size);
    pos += size + 2;  // data + CRLF
  }
  return out;
}

HttpReply parse_reply(const std::string& raw) {
  HttpReply reply;
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) return reply;
  // "HTTP/1.1 200 OK"
  const std::size_t space = raw.find(' ');
  if (space != std::string::npos && space < line_end) {
    reply.status = std::atoi(raw.c_str() + space + 1);
  }
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return reply;
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = raw.find("\r\n", pos);
    const std::size_t colon = raw.find(':', pos);
    if (colon == std::string::npos || colon > eol) break;
    std::string key = raw.substr(pos, colon - pos);
    for (char& c : key) c = static_cast<char>(std::tolower(c));
    std::size_t value = colon + 1;
    while (value < eol && raw[value] == ' ') ++value;
    reply.headers[key] = raw.substr(value, eol - value);
    pos = eol + 2;
  }
  reply.body = raw.substr(header_end + 4);
  const auto encoding = reply.headers.find("transfer-encoding");
  if (encoding != reply.headers.end() && encoding->second == "chunked") {
    reply.body = dechunk(reply.body);
  }
  return reply;
}

std::string drain(rsp::Transport& wire, int deadline_ms = kDeadlineMs) {
  std::string raw;
  const auto start = std::chrono::steady_clock::now();
  while (!wire.closed()) {
    raw += wire.recv(50);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
            .count() > deadline_ms) {
      break;
    }
  }
  raw += wire.recv(0);
  return raw;
}

std::string request_text(const std::string& method, const std::string& path,
                         const std::string& body,
                         const std::string& content_type) {
  std::string request = method + " " + path + " HTTP/1.1\r\n" +
                        "Host: 127.0.0.1\r\nConnection: close\r\n" +
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n";
  if (!body.empty()) request += "Content-Type: " + content_type + "\r\n";
  request += "\r\n" + body;
  return request;
}

HttpReply http(u16 port, const std::string& method, const std::string& path,
               const std::string& body = {},
               const std::string& content_type = "application/json") {
  std::unique_ptr<rsp::Transport> wire = rsp::tcp_connect("127.0.0.1", port);
  if (wire == nullptr) return {};
  if (!wire->send(request_text(method, path, body, content_type))) return {};
  return parse_reply(drain(*wire));
}

// JSON field out of a reply body ("" / 0 when absent).
std::string json_string(const std::string& body, const std::string& key) {
  const auto parsed = common::json::parse(body);
  if (!parsed.ok() || !parsed.value().is_object()) return {};
  const auto it = parsed.value().object().find(key);
  if (it == parsed.value().object().end() || !it->second.is_string()) {
    return {};
  }
  return it->second.string();
}

long long json_int(const std::string& body, const std::string& key) {
  const auto parsed = common::json::parse(body);
  if (!parsed.ok() || !parsed.value().is_object()) return -1;
  const auto it = parsed.value().object().find(key);
  if (it == parsed.value().object().end() || !it->second.is_int()) {
    return -1;
  }
  return it->second.integer();
}

[[nodiscard]] bool wait_for_state(u16 port, u64 id, const std::string& want) {
  const auto start = std::chrono::steady_clock::now();
  while (true) {
    const HttpReply info =
        http(port, "GET", "/sessions/" + std::to_string(id));
    if (info.status == 200 && json_string(info.body, "state") == want) {
      return true;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
            .count() > kDeadlineMs) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// --------------------------------------------------------- test fixture

class ServerE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    apps::register_machine_peripherals();
    Service::Options options;
    options.limits.max_sessions = 8;
    options.limits.worker_budget = 16;  // independent of host core count
    service_ = std::make_unique<Service>(std::move(options));
    auto started = HttpServer::start(
        0, [this](const HttpRequest& request, HttpResponseWriter& writer) {
          service_->handle(request, writer);
        });
    ASSERT_TRUE(started.ok()) << started.error();
    http_ = std::move(started).value();
    port_ = http_->port();
  }

  void TearDown() override {
    if (service_ != nullptr) service_->manager().kill_all();
    if (http_ != nullptr) http_->stop();
  }

  u64 create_session(const std::string& body) {
    const HttpReply reply =
        http(port_, "POST", "/sessions", body);
    EXPECT_EQ(reply.status, 201) << reply.body;
    const long long id = json_int(reply.body, "id");
    EXPECT_GT(id, 0) << reply.body;
    return static_cast<u64>(id);
  }

  std::unique_ptr<Service> service_;
  std::unique_ptr<HttpServer> http_;
  u16 port_ = 0;
};

// Inline single-core machine with a chosen execution tier.
std::string machine_body(const char* program, const char* exec_tier,
                         const std::string& extra = {}) {
  machine::MachineDesc desc = machine::MachineDesc::single_core(program);
  if (const auto tier = iss::parse_exec_tier(exec_tier)) {
    desc.cores[0].exec_tier = *tier;
  }
  std::string body =
      "{\"machine\":" + desc.to_json() + ",\"control_quantum\":64";
  if (!extra.empty()) body += "," + extra;
  body += "}";
  return body;
}

constexpr const char* kCountProgram = R"(
start:
  li r3, 200
loop:
  addik r3, r3, -1
  bnei r3, loop
  halt
)";

constexpr const char* kTraceProgram = R"(
start:
  li r3, 8
loop:
  addik r3, r3, -1
  bnei r3, loop
  halt
)";

sim::SimSystem batch_system(const machine::MachineDesc& desc) {
  auto built = sim::SimSystem::Builder().machine(desc).metrics().build();
  EXPECT_TRUE(built.ok()) << built.error();
  return std::move(built).value();
}

// ------------------------------------------------------------ the tests

TEST_F(ServerE2E, ConcurrentSessionsMatchBatchWithWireCheckpointRestore) {
  // Four concurrent sessions on mixed tiers: a traced precise core, a
  // predecode core, a dbt core, and the 3-core CORDIC farm machine.
  const std::string farm_path =
      std::string(MBCOSIM_EXAMPLES_DIR) + "/machines/cordic_farm.json";
  const u64 traced =
      create_session(machine_body(kTraceProgram, "precise", "\"trace\":true"));
  const u64 stepped = create_session(machine_body(kCountProgram, "predecode"));
  const u64 translated = create_session(machine_body(kCountProgram, "dbt"));
  const u64 farm =
      create_session("{\"machine_file\":\"" + farm_path + "\"}");

  // Stream the traced session from a dedicated connection.
  std::unique_ptr<rsp::Transport> stream_wire =
      rsp::tcp_connect("127.0.0.1", port_);
  ASSERT_NE(stream_wire, nullptr);
  ASSERT_TRUE(stream_wire->send(request_text(
      "GET", "/sessions/" + std::to_string(traced) + "/stream", "", "")));
  std::string stream_raw;
  std::thread stream_reader(
      [&] { stream_raw = drain(*stream_wire); });

  // Kick all four off together; `stepped` stops at absolute cycle 192
  // so a mid-run checkpoint exists to ship over the wire.
  for (const u64 id : {traced, translated, farm}) {
    const HttpReply run = http(
        port_, "POST", "/sessions/" + std::to_string(id) + "/run", "{}");
    EXPECT_EQ(run.status, 200) << run.body;
  }
  const HttpReply run_stepped =
      http(port_, "POST", "/sessions/" + std::to_string(stepped) + "/run",
           "{\"max_cycles\":192}");
  EXPECT_EQ(run_stepped.status, 200) << run_stepped.body;
  for (const u64 id : {traced, stepped, translated, farm}) {
    ASSERT_TRUE(wait_for_state(port_, id, "idle")) << "session " << id;
  }

  // --- checkpoint over the wire into a fresh session ---
  const HttpReply image = http(
      port_, "GET", "/sessions/" + std::to_string(stepped) + "/checkpoint");
  ASSERT_EQ(image.status, 200);
  ASSERT_FALSE(image.body.empty());
  const u64 restored = create_session(machine_body(kCountProgram, "predecode"));
  const HttpReply restore = http(
      port_, "POST", "/sessions/" + std::to_string(restored) + "/restore",
      image.body, "application/octet-stream");
  ASSERT_EQ(restore.status, 200) << restore.body;
  EXPECT_EQ(json_string(restore.body, "stop"), "restored");
  // Both the original and the restored copy now run to the halt.
  for (const u64 id : {stepped, restored}) {
    const HttpReply run = http(
        port_, "POST", "/sessions/" + std::to_string(id) + "/run", "{}");
    EXPECT_EQ(run.status, 200) << run.body;
    ASSERT_TRUE(wait_for_state(port_, id, "idle"));
  }

  // --- batch equivalence, session by session ---
  const auto page = [&](u64 id, const char* verb) {
    const HttpReply reply = http(
        port_, "GET", "/sessions/" + std::to_string(id) + "/" + verb);
    EXPECT_EQ(reply.status, 200) << reply.body;
    return reply.body;
  };

  {  // traced precise core: stats page + streamed trace bytes
    machine::MachineDesc desc = machine::MachineDesc::single_core(kTraceProgram);
    desc.cores[0].exec_tier = iss::ExecTier::kPrecise;
    sim::SimSystem batch = batch_system(desc);
    std::ostringstream golden;
    auto sink = std::make_unique<obs::JsonlSink>(golden);
    sink->set_disassembler([](Addr, Word raw) { return isa::disassemble(raw); });
    batch.trace_bus(0).add_sink(std::move(sink));
    ASSERT_EQ(batch.run(), core::StopReason::kHalted);
    EXPECT_EQ(page(traced, "stats"), stats_text(batch));

    // End the stream (kill closes the hub) and compare the event lines.
    const HttpReply killed = http(
        port_, "DELETE", "/sessions/" + std::to_string(traced));
    EXPECT_EQ(killed.status, 200) << killed.body;
    stream_reader.join();
    const HttpReply stream = parse_reply(stream_raw);
    EXPECT_EQ(stream.status, 200);
    std::string events;
    std::istringstream lines(stream.body);
    std::string line;
    bool saw_drop = false;
    while (std::getline(lines, line)) {
      if (line.find("\"stream\":") != std::string::npos) {
        saw_drop |= line.find("\"stream\":\"dropped\"") != std::string::npos;
        continue;  // state/metrics records ride alongside the trace
      }
      events += line + "\n";
    }
    EXPECT_FALSE(saw_drop);  // this client kept up; nothing was lost
    EXPECT_EQ(events, golden.str());
  }

  for (const auto& [id, tier] :
       {std::pair<u64, iss::ExecTier>{translated, iss::ExecTier::kDbt},
        std::pair<u64, iss::ExecTier>{stepped, iss::ExecTier::kPredecode}}) {
    machine::MachineDesc desc = machine::MachineDesc::single_core(kCountProgram);
    desc.cores[0].exec_tier = tier;
    sim::SimSystem batch = batch_system(desc);
    ASSERT_EQ(batch.run(), core::StopReason::kHalted);
    EXPECT_EQ(page(id, "stats"), stats_text(batch)) << "session " << id;
    EXPECT_EQ(page(id, "metrics"), batch.metrics_snapshot().to_string());
  }

  {  // The restored copy equals a batch system fed the same image
     // (metrics collectors are observation-side state, not part of a
     // checkpoint, so the reference restores too).
    machine::MachineDesc desc = machine::MachineDesc::single_core(kCountProgram);
    desc.cores[0].exec_tier = iss::ExecTier::kPredecode;
    sim::SimSystem batch = batch_system(desc);
    const std::vector<unsigned char> bytes(image.body.begin(),
                                           image.body.end());
    const Status ok = batch.restore_image(bytes);
    ASSERT_TRUE(ok.ok) << ok.message;
    ASSERT_EQ(batch.run(), core::StopReason::kHalted);
    EXPECT_EQ(page(restored, "stats"), stats_text(batch));
    EXPECT_EQ(page(restored, "metrics"), batch.metrics_snapshot().to_string());
  }

  {  // the 3-core farm created from a server-side machine file
    auto desc = machine::MachineDesc::from_file(farm_path);
    ASSERT_TRUE(desc.ok()) << desc.error();
    sim::SimSystem batch = batch_system(desc.value());
    ASSERT_EQ(batch.run(), core::StopReason::kHalted);
    EXPECT_EQ(page(farm, "stats"), stats_text(batch));
    EXPECT_EQ(page(farm, "metrics"), batch.metrics_snapshot().to_string());
  }
}

TEST_F(ServerE2E, SlowStreamClientIsBoundedWithInStreamDropAccounting) {
  // ~100k trace events against a subscriber queue of 8 lines and a
  // client that reads nothing until the run is over: the oldest lines
  // must be dropped (bounded memory), and the loss must be announced
  // in-stream before the lines that follow the gap.
  constexpr const char* kFloodProgram = R"(
start:
  li r3, 50000
loop:
  addik r3, r3, -1
  bnei r3, loop
  halt
)";
  const u64 id = create_session(machine_body(
      kFloodProgram, "precise", "\"trace\":true,\"stream_queue\":8"));

  std::unique_ptr<rsp::Transport> wire = rsp::tcp_connect("127.0.0.1", port_);
  ASSERT_NE(wire, nullptr);
  ASSERT_TRUE(wire->send(request_text(
      "GET", "/sessions/" + std::to_string(id) + "/stream", "", "")));
  // Let the subscription attach before the flood starts.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const HttpReply run = http(
      port_, "POST", "/sessions/" + std::to_string(id) + "/run", "{}");
  ASSERT_EQ(run.status, 200) << run.body;
  ASSERT_TRUE(wait_for_state(port_, id, "idle"));
  const HttpReply killed =
      http(port_, "DELETE", "/sessions/" + std::to_string(id));
  EXPECT_EQ(killed.status, 200) << killed.body;

  // Only now does the client read. Everything still queued (at most the
  // 8-line bound plus what the kernel buffered) arrives, then the
  // stream ends cleanly.
  const HttpReply stream = parse_reply(drain(*wire));
  EXPECT_EQ(stream.status, 200);

  std::size_t received_lines = 0;
  long long last_drop_total = 0;
  bool drop_before_following_line = false;
  std::istringstream lines(stream.body);
  std::string line;
  while (std::getline(lines, line)) {
    ++received_lines;
    if (line.find("\"stream\":\"dropped\"") != std::string::npos) {
      last_drop_total = std::max(last_drop_total, json_int(line, "total"));
      EXPECT_GT(json_int(line, "count"), 0) << line;
      drop_before_following_line = true;
    }
  }
  EXPECT_TRUE(drop_before_following_line) << "no in-stream drop record";
  EXPECT_GT(last_drop_total, 0);
  // The program retired ~100k instructions; a lossless stream would
  // carry at least that many lines. Conservation: what arrived plus
  // what was dropped covers the flood, and far fewer lines arrived
  // than were published.
  EXPECT_LT(received_lines, 100'000u);
  EXPECT_GT(received_lines + static_cast<std::size_t>(last_drop_total),
            100'000u);
  EXPECT_NE(stream.body.find("\"state\":\"killed\""), std::string::npos);
}

TEST_F(ServerE2E, DebugPortAttachDetachOverHttp) {
  constexpr const char* kSpinProgram = "loop: bri loop2\nloop2: bri loop\n";
  const u64 id = create_session(machine_body(kSpinProgram, "precise"));

  const HttpReply opened = http(
      port_, "POST", "/sessions/" + std::to_string(id) + "/debug",
      "{\"port\":0}");
  ASSERT_EQ(opened.status, 200) << opened.body;
  const long long debug_port = json_int(opened.body, "port");
  ASSERT_GT(debug_port, 0) << opened.body;
  ASSERT_TRUE(wait_for_state(port_, id, "debug"));

  // While a client is attached, the session refuses to run.
  std::unique_ptr<rsp::Transport> gdb =
      rsp::tcp_connect("127.0.0.1", static_cast<u16>(debug_port));
  ASSERT_NE(gdb, nullptr);
  rsp::testclient::RspTestClient client(*gdb, /*pump=*/{}, kDeadlineMs);
  EXPECT_EQ(client.transact("?"), "S05");
  const HttpReply busy = http(
      port_, "POST", "/sessions/" + std::to_string(id) + "/run", "{}");
  EXPECT_EQ(busy.status, 409) << busy.body;

  // Detach; the session returns to idle and records how debug ended.
  EXPECT_EQ(client.transact("D"), "OK");
  ASSERT_TRUE(wait_for_state(port_, id, "idle"));
  const HttpReply info =
      http(port_, "GET", "/sessions/" + std::to_string(id));
  EXPECT_EQ(json_string(info.body, "stop").rfind("debug-", 0), 0u)
      << info.body;
  const HttpReply killed =
      http(port_, "DELETE", "/sessions/" + std::to_string(id));
  EXPECT_EQ(killed.status, 200) << killed.body;
}

// ------------------------------------------ keep-alive & crash recovery

/// Read exactly one fixed-length reply from a connection that stays
/// open afterwards (keep-alive), leaving pipelined surplus in `raw`.
HttpReply recv_reply(rsp::Transport& wire, std::string& raw) {
  const auto start = std::chrono::steady_clock::now();
  while (true) {
    const std::size_t head_end = raw.find("\r\n\r\n");
    if (head_end != std::string::npos) {
      const HttpReply head = parse_reply(raw.substr(0, head_end + 4));
      const auto it = head.headers.find("content-length");
      const std::size_t length =
          it == head.headers.end()
              ? 0
              : std::strtoul(it->second.c_str(), nullptr, 10);
      if (raw.size() >= head_end + 4 + length) {
        HttpReply reply = head;
        reply.body = raw.substr(head_end + 4, length);
        raw.erase(0, head_end + 4 + length);
        return reply;
      }
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (wire.closed() ||
        std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count() > kDeadlineMs) {
      return {};
    }
    raw += wire.recv(50);
  }
}

TEST_F(ServerE2E, KeepAliveConnectionServesSequentialRequests) {
  std::unique_ptr<rsp::Transport> wire = rsp::tcp_connect("127.0.0.1", port_);
  ASSERT_NE(wire, nullptr);
  std::string raw;

  // Two request/response round trips on one connection.
  ASSERT_TRUE(wire->send("GET /healthz HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                         "Connection: keep-alive\r\n\r\n"));
  HttpReply first = recv_reply(*wire, raw);
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.body, "ok\n");
  EXPECT_EQ(first.headers["connection"], "keep-alive");

  ASSERT_TRUE(wire->send("GET /sessions HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                         "Connection: keep-alive\r\n\r\n"));
  HttpReply second = recv_reply(*wire, raw);
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(second.body, "{\"sessions\":[]}");
  EXPECT_EQ(second.headers["connection"], "keep-alive");

  // A request without the opt-in header ends the connection.
  ASSERT_TRUE(wire->send("GET /healthz HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n"));
  HttpReply last = recv_reply(*wire, raw);
  EXPECT_EQ(last.status, 200);
  EXPECT_EQ(last.headers["connection"], "close");
  drain(*wire, 5000);
  EXPECT_TRUE(wire->closed());
}

TEST(ServerE2EDurability, RecoveryAcrossServiceRestartMatchesBatch) {
  apps::register_machine_peripherals();
  const std::string state_dir =
      ::testing::TempDir() + "srv_e2e_recovery";
  std::filesystem::remove_all(state_dir);
  const std::string create_body = machine_body(kCountProgram, "predecode");
  u64 id = 0;

  {  // Daemon #1: create, run to cycle 192, "crash" (no drain, no kill).
    Service::Options options;
    options.state_dir = state_dir;
    auto service = std::make_unique<Service>(std::move(options));
    ASSERT_TRUE(service->init().ok);
    auto started = HttpServer::start(
        0, [&service](const HttpRequest& request, HttpResponseWriter& writer) {
          service->handle(request, writer);
        });
    ASSERT_TRUE(started.ok()) << started.error();
    const u16 port = started.value()->port();
    const HttpReply created = http(port, "POST", "/sessions", create_body);
    ASSERT_EQ(created.status, 201) << created.body;
    id = static_cast<u64>(json_int(created.body, "id"));
    const HttpReply run = http(
        port, "POST", "/sessions/" + std::to_string(id) + "/run",
        "{\"max_cycles\":192}");
    ASSERT_EQ(run.status, 200) << run.body;
    ASSERT_TRUE(wait_for_state(port, id, "idle"));
    started.value()->stop();
    // Scope exit destroys the Service without drain() — from the
    // journal's point of view this is indistinguishable from kill -9.
  }

  {  // Daemon #2: --recover rebuilds the session from its journal.
    Service::Options options;
    options.state_dir = state_dir;
    options.recover = true;
    auto service = std::make_unique<Service>(std::move(options));
    SessionManager::RecoveryReport report;
    ASSERT_TRUE(service->init(&report).ok);
    ASSERT_EQ(report.recovered, 1u);
    auto started = HttpServer::start(
        0, [&service](const HttpRequest& request, HttpResponseWriter& writer) {
          service->handle(request, writer);
        });
    ASSERT_TRUE(started.ok()) << started.error();
    const u16 port = started.value()->port();

    const HttpReply info =
        http(port, "GET", "/sessions/" + std::to_string(id));
    ASSERT_EQ(info.status, 200) << info.body;
    EXPECT_EQ(json_string(info.body, "state"), "idle");
    // Recovered exactly at the pre-crash stop point (the run target,
    // modulo an instruction straddling the boundary).
    EXPECT_EQ(json_int(info.body, "recovered_from_cycle"),
              json_int(info.body, "cycles"));
    EXPECT_GE(json_int(info.body, "recovered_from_cycle"), 192);

    // Finish the run; the result is byte-identical to an uninterrupted
    // batch run of the same machine.
    const HttpReply run = http(
        port, "POST", "/sessions/" + std::to_string(id) + "/run", "{}");
    ASSERT_EQ(run.status, 200) << run.body;
    ASSERT_TRUE(wait_for_state(port, id, "idle"));

    machine::MachineDesc desc =
        machine::MachineDesc::single_core(kCountProgram);
    desc.cores[0].exec_tier = iss::ExecTier::kPredecode;
    sim::SimSystem batch = batch_system(desc);
    ASSERT_EQ(batch.run(), core::StopReason::kHalted);
    const HttpReply stats = http(
        port, "GET", "/sessions/" + std::to_string(id) + "/stats");
    EXPECT_EQ(stats.body, stats_text(batch));
    const HttpReply metrics = http(
        port, "GET", "/sessions/" + std::to_string(id) + "/metrics");
    EXPECT_EQ(metrics.body, batch.metrics_snapshot().to_string());

    // Graceful shutdown path: once draining, creates are refused with
    // the stable 503 code.
    service->drain();
    const HttpReply refused = http(port, "POST", "/sessions", create_body);
    EXPECT_EQ(refused.status, 503) << refused.body;
    EXPECT_NE(refused.body.find("[srv-draining]"), std::string::npos)
        << refused.body;
    started.value()->stop();
  }
  std::filesystem::remove_all(state_dir);
}

}  // namespace
}  // namespace mbcosim::server
