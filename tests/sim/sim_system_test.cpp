// SimSystem facade: builder error paths (every configuration problem
// comes back through Expected, never a throw) and equivalence with the
// hand-wired low-level API (identical cycle counts and results).
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "core/cosim_engine.hpp"
#include "sim/sim_system.hpp"
#include "sysgen/blocks_basic.hpp"

namespace mbcosim::sim {
namespace {

namespace sg = mbcosim::sysgen;

// The quickstart "times three" application: multiply in hardware over
// FSL channel 0, +1 and control flow in software.
constexpr const char* kTimesThreeSource = R"(
  start:
    la   r5, inputs
    la   r6, outputs
    li   r7, 4
  loop:
    lwi  r3, r5, 0
    put  r3, rfsl0
    get  r4, rfsl0
    addik r4, r4, 1
    swi  r4, r6, 0
    addik r5, r5, 4
    addik r6, r6, 4
    addik r7, r7, -1
    bnei r7, loop
    halt
  inputs:  .word 1, 2, 10, 100
  outputs: .space 16
)";

struct TimesThree {
  std::unique_ptr<sg::Model> model;
  FslGateways io;
};

TimesThree build_times_three() {
  const FixFormat word32 = FixFormat::signed_fix(32, 0);
  const FixFormat boolf = FixFormat::unsigned_fix(1, 0);
  TimesThree hw;
  hw.model = std::make_unique<sg::Model>("times_three");
  auto& data_in = hw.model->add<sg::GatewayIn>("fsl.data", word32);
  auto& exists = hw.model->add<sg::GatewayIn>("fsl.exists", boolf);
  auto& read_ack = hw.model->add<sg::GatewayOut>("fsl.read", exists.out());
  auto& three =
      hw.model->add<sg::Constant>("three", Fix::from_int(word32, 3));
  auto& product = hw.model->add<sg::Mult>("mult", data_in.out(), three.out(),
                                          word32, /*latency=*/0);
  auto& data_out = hw.model->add<sg::GatewayOut>("fsl.dout", product.out());
  auto& write = hw.model->add<sg::GatewayOut>("fsl.write", exists.out());
  hw.io.s_data = &data_in;
  hw.io.s_exists = &exists;
  hw.io.s_read = &read_ack;
  hw.io.m_data = &data_out;
  hw.io.m_write = &write;
  return hw;
}

TEST(SimSystemBuilder, MissingProgramIsAnError) {
  auto built = SimSystem::Builder().build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.error().find("no program"), std::string::npos);
}

TEST(SimSystemBuilder, BadAssemblyIsAnError) {
  auto built = SimSystem::Builder().program("frobnicate r1, r2\n").build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.error().find("does not assemble"), std::string::npos);
}

TEST(SimSystemBuilder, ChannelOutOfRangeIsAnError) {
  TimesThree hw = build_times_three();
  auto built = SimSystem::Builder()
                   .program("halt\n")
                   .hardware(std::move(hw.model))
                   .bind_fsl(8, hw.io)
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.error().find("out of range"), std::string::npos);
}

TEST(SimSystemBuilder, ChannelBoundTwiceIsAnError) {
  TimesThree hw = build_times_three();
  auto built = SimSystem::Builder()
                   .program("halt\n")
                   .hardware(std::move(hw.model))
                   .bind_fsl(0, hw.io)
                   .bind_fsl(0, hw.io)
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.error().find("bound twice"), std::string::npos);
}

TEST(SimSystemBuilder, BindWithoutHardwareIsAnError) {
  TimesThree hw = build_times_three();  // keeps the gateways alive
  auto built =
      SimSystem::Builder().program("halt\n").bind_fsl(0, hw.io).build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.error().find("no hardware model"), std::string::npos);
}

TEST(SimSystemBuilder, IncompleteSlaveSideIsAnError) {
  TimesThree hw = build_times_three();
  FslGateways io = hw.io;
  io.s_read = nullptr;  // slave side now lacks its required read ack
  auto built = SimSystem::Builder()
                   .program("halt\n")
                   .hardware(std::move(hw.model))
                   .bind_fsl(0, io)
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.error().find("s_read"), std::string::npos);
}

TEST(SimSystemBuilder, EmptyGatewaySetIsAnError) {
  TimesThree hw = build_times_three();
  auto built = SimSystem::Builder()
                   .program("halt\n")
                   .hardware(std::move(hw.model))
                   .bind_fsl(0, FslGateways{})
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.error().find("binds no gateways"), std::string::npos);
}

TEST(SimSystemBuilder, ModelAndFactoryAreMutuallyExclusive) {
  TimesThree hw = build_times_three();
  auto built = SimSystem::Builder()
                   .program("halt\n")
                   .hardware(std::move(hw.model))
                   .hardware([] { return HardwareBundle{}; })
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.error().find("mutually exclusive"), std::string::npos);
}

TEST(SimSystemBuilder, FactoryExceptionIsCaptured) {
  auto built = SimSystem::Builder()
                   .program("halt\n")
                   .hardware([]() -> HardwareBundle {
                     throw SimError("peripheral generator exploded");
                   })
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.error().find("peripheral generator exploded"),
            std::string::npos);
}

TEST(SimSystemBuilder, ProgramTooLargeForMemoryIsAnError) {
  auto built = SimSystem::Builder()
                   .program(".space 4096\nhalt\n")
                   .memory_bytes(1024)
                   .build();
  ASSERT_FALSE(built.ok());
}

// The acceptance check of the facade: building through SimSystem must be
// cycle- and bit-identical to the ~20-line hand wiring it replaces.
TEST(SimSystem, MatchesManualWiring) {
  // Manual low-level wiring, exactly as examples/custom_peripheral.cpp.
  TimesThree manual_hw = build_times_three();
  const assembler::Program program =
      assembler::assemble_or_throw(kTimesThreeSource);
  iss::LmbMemory memory;
  memory.load_program(program);
  fsl::FslHub hub;
  iss::Processor cpu(isa::CpuConfig{}, memory, &hub);
  core::CoSimEngine engine(cpu, *manual_hw.model, hub);
  core::SlaveBinding slave;
  slave.channel = 0;
  slave.data = manual_hw.io.s_data;
  slave.exists = manual_hw.io.s_exists;
  slave.read = manual_hw.io.s_read;
  engine.bridge().bind_slave(slave);
  core::MasterBinding master;
  master.channel = 0;
  master.data = manual_hw.io.m_data;
  master.write = manual_hw.io.m_write;
  engine.bridge().bind_master(master);
  engine.reset(program.entry());
  const core::StopReason manual_reason = engine.run();
  const core::CoSimStats manual_stats = engine.stats();

  // The same design through the facade.
  TimesThree hw = build_times_three();
  auto built = SimSystem::Builder()
                   .program(kTimesThreeSource)
                   .hardware(std::move(hw.model))
                   .bind_fsl(0, hw.io)
                   .build();
  ASSERT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();
  const core::StopReason reason = system.run();
  const core::CoSimStats stats = system.stats();

  EXPECT_EQ(reason, manual_reason);
  EXPECT_EQ(stats.cycles, manual_stats.cycles);
  EXPECT_EQ(stats.instructions, manual_stats.instructions);
  EXPECT_EQ(stats.fsl_stall_cycles, manual_stats.fsl_stall_cycles);
  EXPECT_EQ(stats.bridge.words_to_hw, manual_stats.bridge.words_to_hw);
  EXPECT_EQ(stats.bridge.words_from_hw, manual_stats.bridge.words_from_hw);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(system.word("outputs", i),
              memory.read_word(program.symbol("outputs") + 4 * i));
  }
}

TEST(SimSystem, SoftwareOnlySystemRuns) {
  auto built = SimSystem::Builder()
                   .program(R"(
                     li  r3, 0
                     li  r4, 10
                   loop:
                     addik r3, r3, 7
                     addik r4, r4, -1
                     bnei r4, loop
                     la  r5, result
                     swi r3, r5, 0
                     halt
                   result: .space 4
                   )")
                   .build();
  ASSERT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();
  EXPECT_EQ(system.hardware(), nullptr);
  EXPECT_EQ(system.engine(), nullptr);
  EXPECT_EQ(system.run(), core::StopReason::kHalted);
  EXPECT_EQ(system.word("result"), 70u);
  EXPECT_GT(system.stats().cycles, 0u);
  EXPECT_EQ(system.stats().hw_cycles_stepped, 0u);
}

TEST(SimSystem, SoftwareOnlyDeadlockIsReported) {
  // A blocking FSL read with no hardware attached can never complete.
  auto built = SimSystem::Builder()
                   .program("get r4, rfsl0\nhalt\n")
                   .deadlock_threshold(200)
                   .build();
  ASSERT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();
  EXPECT_EQ(system.run(), core::StopReason::kDeadlock);
}

TEST(SimSystem, HardwareDeadlockIsReported) {
  // A peripheral that never reads nor writes: the processor's blocking
  // get starves and the engine's deadlock heuristic must fire.
  auto model = std::make_unique<sg::Model>("dead");
  const FixFormat word32 = FixFormat::signed_fix(32, 0);
  const FixFormat boolf = FixFormat::unsigned_fix(1, 0);
  auto& data_in = model->add<sg::GatewayIn>("fsl.data", word32);
  auto& exists = model->add<sg::GatewayIn>("fsl.exists", boolf);
  auto& never =
      model->add<sg::Constant>("never", Fix::from_int(boolf, 0));
  auto& read_ack = model->add<sg::GatewayOut>("fsl.read", never.out());
  FslGateways io;
  io.s_data = &data_in;
  io.s_exists = &exists;
  io.s_read = &read_ack;
  auto built = SimSystem::Builder()
                   .program("put r3, rfsl0\nget r4, rfsl0\nhalt\n")
                   .hardware(std::move(model))
                   .bind_fsl(0, io)
                   .deadlock_threshold(500)
                   .build();
  ASSERT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();
  EXPECT_EQ(system.run(), core::StopReason::kDeadlock);
}

TEST(SimSystem, ResetAllowsRerun) {
  TimesThree hw = build_times_three();
  auto built = SimSystem::Builder()
                   .program(kTimesThreeSource)
                   .hardware(std::move(hw.model))
                   .bind_fsl(0, hw.io)
                   .build();
  ASSERT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();
  ASSERT_EQ(system.run(), core::StopReason::kHalted);
  const Cycle first = system.stats().cycles;
  system.reset();
  ASSERT_EQ(system.run(), core::StopReason::kHalted);
  EXPECT_EQ(system.stats().cycles, first);
}

TEST(SimSystem, ResourceAndEnergyReportsCoverTheWholeDesign) {
  TimesThree hw = build_times_three();
  auto built = SimSystem::Builder()
                   .program(kTimesThreeSource)
                   .hardware(std::move(hw.model))
                   .bind_fsl(0, hw.io)
                   .build();
  ASSERT_TRUE(built.ok()) << built.error();
  SimSystem system = std::move(built).value();
  ASSERT_EQ(system.run(), core::StopReason::kHalted);
  const auto report = system.resource_report();
  EXPECT_GT(report.estimated.slices, 0u);
  EXPECT_GT(report.estimated.mult18s, 0u);  // the peripheral's multiplier
  const auto energy = system.energy_report();
  EXPECT_GT(energy.processor_nj, 0.0);
  EXPECT_GT(energy.peripheral_nj, 0.0);
  EXPECT_EQ(energy.cycles, system.stats().cycles);
}

}  // namespace
}  // namespace mbcosim::sim
