// sim::Sweep: determinism across thread counts (the per-point results
// must be bit-identical whether the sweep runs serially or on a pool),
// failure isolation, deadlock surfacing and result-table ordering.
//
// This file is also built as the `sweep_tsan_test` executable and run
// under ThreadSanitizer as the tier-2 `sweep_tsan` ctest label.
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/cordic/cordic_app.hpp"
#include "sim/sweep.hpp"

namespace mbcosim::sim {
namespace {

namespace cordic = mbcosim::apps::cordic;

/// A small but real co-simulation workload: CORDIC division, 3 items.
Sweep make_cordic_sweep(const std::vector<i32>& x, const std::vector<i32>& y) {
  Sweep sweep;
  for (unsigned p : {0u, 1u, 2u, 4u}) {
    cordic::CordicRunConfig config;
    config.num_pes = p;
    config.iterations = 8;
    config.items = static_cast<unsigned>(x.size());
    config.set_size = 1;
    sweep.add("P=" + std::to_string(p),
              [config, &x, &y] { return cordic::make_cordic_system(config, x, y); },
              [config, &x, &y](SimSystem& system, SweepPointResult& result) {
                const auto expected = cordic::cordic_expected(config, x, y);
                for (unsigned i = 0; i < config.items; ++i) {
                  if (static_cast<i32>(system.word("results", i)) !=
                      expected[i]) {
                    result.ok = false;
                    result.error = "wrong quotient at item " + std::to_string(i);
                    return;
                  }
                }
              });
  }
  return sweep;
}

void expect_identical(const SweepPointResult& a, const SweepPointResult& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.stop, b.stop);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.instructions, b.stats.instructions);
  EXPECT_EQ(a.stats.fsl_stall_cycles, b.stats.fsl_stall_cycles);
  EXPECT_EQ(a.stats.hw_cycles_stepped, b.stats.hw_cycles_stepped);
  EXPECT_EQ(a.stats.hw_cycles_skipped, b.stats.hw_cycles_skipped);
  EXPECT_EQ(a.stats.bridge.words_to_hw, b.stats.bridge.words_to_hw);
  EXPECT_EQ(a.stats.bridge.words_from_hw, b.stats.bridge.words_from_hw);
  EXPECT_EQ(a.stats.bridge.refused_writes, b.stats.bridge.refused_writes);
  EXPECT_EQ(a.estimated_resources, b.estimated_resources);
  EXPECT_EQ(a.implemented_resources, b.implemented_resources);
  // The energy model is pure arithmetic over the (identical) stats and
  // resources, so even the doubles must match bit for bit.
  EXPECT_EQ(a.energy.processor_nj, b.energy.processor_nj);
  EXPECT_EQ(a.energy.peripheral_nj, b.energy.peripheral_nj);
  EXPECT_EQ(a.energy.static_nj, b.energy.static_nj);
  EXPECT_EQ(a.energy.cycles, b.energy.cycles);
}

TEST(Sweep, SerialAndParallelRunsAreBitIdentical) {
  const auto [x, y] = cordic::make_cordic_dataset(3, 42);
  const Sweep sweep = make_cordic_sweep(x, y);

  const auto serial = sweep.run({.threads = 1});
  const auto parallel = sweep.run({.threads = 4});

  ASSERT_EQ(serial.size(), sweep.size());
  ASSERT_EQ(parallel.size(), sweep.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].label);
    EXPECT_TRUE(serial[i].ok) << serial[i].error;
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(Sweep, ResultsKeepAddOrderOnManyThreads) {
  const auto [x, y] = cordic::make_cordic_dataset(2, 7);
  const Sweep sweep = make_cordic_sweep(x, y);
  const auto results = sweep.run({.threads = 8});
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
  }
  EXPECT_EQ(results[0].label, "P=0");
  EXPECT_EQ(results[1].label, "P=1");
  EXPECT_EQ(results[2].label, "P=2");
  EXPECT_EQ(results[3].label, "P=4");
}

TEST(Sweep, FailingPointsDoNotPoisonTheOthers) {
  Sweep sweep;
  // Point 0: healthy software-only run.
  sweep.add("good", [] {
    return SimSystem::Builder().program("li r3, 5\nhalt\n").build();
  });
  // Point 1: the factory itself reports a build error.
  sweep.add("unbuildable", [] { return SimSystem::Builder().build(); });
  // Point 2: builds, but the software blocks on an FSL that no hardware
  // ever serves — a deadlocked configuration point.
  sweep.add("deadlocked", [] {
    return SimSystem::Builder()
        .program("get r4, rfsl0\nhalt\n")
        .deadlock_threshold(200)
        .build();
  });
  // Point 3: the factory throws instead of returning an error.
  sweep.add("throwing", []() -> Expected<SimSystem> {
    throw SimError("factory blew up");
  });
  // Point 4: healthy again — must be unaffected by its neighbours.
  sweep.add("good-too", [] {
    return SimSystem::Builder().program("li r3, 6\nhalt\n").build();
  });

  const auto results = sweep.run({.threads = 4});
  ASSERT_EQ(results.size(), 5u);

  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_EQ(results[0].stop, core::StopReason::kHalted);

  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("no program"), std::string::npos);

  EXPECT_FALSE(results[2].ok);
  EXPECT_TRUE(results[2].error.empty());
  EXPECT_EQ(results[2].stop, core::StopReason::kDeadlock);

  EXPECT_FALSE(results[3].ok);
  EXPECT_NE(results[3].error.find("factory blew up"), std::string::npos);

  EXPECT_TRUE(results[4].ok) << results[4].error;
  EXPECT_GT(results[4].stats.cycles, 0u);
}

TEST(Sweep, CollectorRunsForEveryPointThatRan) {
  std::atomic<int> collected{0};
  std::atomic<int> saw_deadlock{0};
  Sweep sweep;
  sweep.add(
      "halts", [] { return SimSystem::Builder().program("halt\n").build(); },
      [&collected](SimSystem&, SweepPointResult&) { ++collected; });
  // A deadlocked point still ran: its collector must fire too (with
  // result.ok == false), so a sweep can autopsy the stuck system.
  sweep.add(
      "deadlocks",
      [] {
        return SimSystem::Builder()
            .program("get r4, rfsl0\nhalt\n")
            .deadlock_threshold(100)
            .build();
      },
      [&collected, &saw_deadlock](SimSystem&, SweepPointResult& result) {
        ++collected;
        if (!result.ok && result.stop == core::StopReason::kDeadlock) {
          ++saw_deadlock;
        }
      });
  // A point whose factory fails never produces a system to inspect.
  sweep.add(
      "unbuildable", [] { return SimSystem::Builder().build(); },
      [&collected](SimSystem&, SweepPointResult&) { ++collected; });
  const auto results = sweep.run({.threads = 2});
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_FALSE(results[2].ok);
  EXPECT_EQ(collected.load(), 2);
  EXPECT_EQ(saw_deadlock.load(), 1);
}

TEST(Sweep, MetricsSnapshotIsCapturedPerPoint) {
  Sweep sweep;
  sweep.add("with-metrics", [] {
    return SimSystem::Builder()
        .program("add r3, r4, r5\nhalt\n")
        .metrics()
        .build();
  });
  sweep.add("without-metrics", [] {
    return SimSystem::Builder().program("add r3, r4, r5\nhalt\n").build();
  });
  // Metrics reach the result row even for a deadlocked point — that is
  // precisely when the aggregated stall counters matter most.
  sweep.add("deadlocked-with-metrics", [] {
    return SimSystem::Builder()
        .program("get r4, rfsl0\nhalt\n")
        .deadlock_threshold(50)
        .metrics()
        .build();
  });
  const auto results = sweep.run({.threads = 2});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].metrics.empty());
  EXPECT_EQ(results[0].metrics.counter("cpu.retired"), 1u);
  EXPECT_EQ(results[0].metrics.counter("cpu.halts"), 1u);
  EXPECT_TRUE(results[1].metrics.empty());
  EXPECT_FALSE(results[2].ok);
  EXPECT_EQ(results[2].metrics.counter("cpu.stall_cycles"), 50u);
  EXPECT_EQ(results[2].metrics.counter("engine.deadlocks"), 1u);
}

TEST(Sweep, EstimatesCanBeSkipped) {
  Sweep sweep;
  sweep.add("sw", [] { return SimSystem::Builder().program("halt\n").build(); });
  const auto with = sweep.run({.threads = 1, .estimates = true});
  const auto without = sweep.run({.threads = 1, .estimates = false});
  EXPECT_GT(with[0].estimated_resources.slices, 0u);
  EXPECT_EQ(without[0].estimated_resources.slices, 0u);
  EXPECT_EQ(with[0].stats.cycles, without[0].stats.cycles);
}

TEST(Sweep, EmptySweepReturnsNoRows) {
  const Sweep sweep;
  EXPECT_TRUE(sweep.run({.threads = 4}).empty());
}

TEST(ThreadPool, RunsEveryJobAndWaitsIdle) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([i, &sum] { sum += i; });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace mbcosim::sim
