// Scheduler and model-graph tests for the sysgen framework.
#include "sysgen/model.hpp"

#include <gtest/gtest.h>

#include "sysgen/blocks_basic.hpp"

namespace mbcosim::sysgen {
namespace {

const FixFormat kF16 = FixFormat::signed_fix(16, 0);

TEST(Model, CombinationalChainEvaluatesInOneCycle) {
  Model m("chain");
  auto& in = m.add<GatewayIn>("in", kF16);
  auto& c1 = m.add<Constant>("c1", Fix::from_int(kF16, 10));
  auto& sum = m.add<AddSub>("sum", AddSub::Mode::kAdd, in.out(), c1.out(),
                            kF16);
  auto& doubled = m.add<AddSub>("dbl", AddSub::Mode::kAdd, sum.out(),
                                sum.out(), kF16);
  auto& out = m.add<GatewayOut>("out", doubled.out());
  in.set(5);
  m.step();
  EXPECT_EQ(out.read_raw(), 30);  // (5 + 10) * 2, same cycle
}

TEST(Model, TopologicalOrderIsIndependentOfInsertionOrder) {
  // Insert consumer before producer: the scheduler must still evaluate
  // producer first.
  Model m("reorder");
  auto& in = m.add<GatewayIn>("in", kF16);
  // Create the consumer's input signal lazily through a constant chain.
  auto& c = m.add<Constant>("c", Fix::from_int(kF16, 1));
  auto& level1 = m.add<AddSub>("level1", AddSub::Mode::kAdd, in.out(),
                               c.out(), kF16);
  auto& level2 = m.add<AddSub>("level2", AddSub::Mode::kAdd, level1.out(),
                               c.out(), kF16);
  auto& level3 = m.add<AddSub>("level3", AddSub::Mode::kAdd, level2.out(),
                               c.out(), kF16);
  auto& out = m.add<GatewayOut>("out", level3.out());
  in.set(0);
  m.step();
  EXPECT_EQ(out.read_raw(), 3);
}

TEST(Model, AlgebraicLoopRejected) {
  Model m("loop");
  auto& in = m.add<GatewayIn>("in", kF16);
  Register& reg = m.add<Register>("tmp", Fix::from_raw(kF16, 0));
  auto& a = m.add<AddSub>("a", AddSub::Mode::kAdd, in.out(), reg.out(), kF16);
  // Close a purely combinational loop: b depends on a, a (re-wired) on b.
  auto& b = m.add<AddSub>("b", AddSub::Mode::kAdd, a.out(), in.out(), kF16);
  reg.connect_d(b.out());
  // Registered loop is fine.
  EXPECT_NO_THROW(m.step());

  Model m2("bad");
  auto& in2 = m2.add<GatewayIn>("in", kF16);
  Signal& fwd = m2.make_signal("fwd", kF16);
  auto& x = m2.add<AddSub>("x", AddSub::Mode::kAdd, in2.out(), fwd, kF16);
  auto& y = m2.add<AddSub>("y", AddSub::Mode::kAdd, x.out(), in2.out(), kF16);
  fwd.set_driver(&y);  // simulate a direct combinational feedback wire
  // The loop detector cannot order x and y.
  EXPECT_THROW(m2.elaborate(), SimError);
}

TEST(Model, SequentialBlocksBreakCycles) {
  // Accumulator: acc <= acc + 1 every cycle.
  Model m("acc");
  auto& one = m.add<Constant>("one", Fix::from_int(kF16, 1));
  Register& acc = m.add<Register>("acc", Fix::from_raw(kF16, 0));
  auto& next = m.add<AddSub>("next", AddSub::Mode::kAdd, acc.out(), one.out(),
                             kF16);
  acc.connect_d(next.out());
  auto& out = m.add<GatewayOut>("out", acc.out());
  m.run(5);
  EXPECT_EQ(out.read_raw(), 4);  // register output lags by one cycle
  m.step();
  EXPECT_EQ(out.read_raw(), 5);
}

TEST(Model, UnconnectedFeedbackRegisterRejected) {
  Model m("incomplete");
  m.add<Register>("reg", Fix::from_raw(kF16, 0));
  EXPECT_THROW(m.elaborate(), SimError);
}

TEST(Model, ResetRestoresInitialState) {
  Model m("reset");
  auto& one = m.add<Constant>("one", Fix::from_int(kF16, 1));
  Register& acc = m.add<Register>("acc", Fix::from_raw(kF16, 0));
  auto& next = m.add<AddSub>("next", AddSub::Mode::kAdd, acc.out(), one.out(),
                             kF16);
  acc.connect_d(next.out());
  auto& out = m.add<GatewayOut>("out", acc.out());
  m.run(10);
  EXPECT_EQ(m.cycle(), 10u);
  EXPECT_EQ(out.read_raw(), 9);
  m.reset();
  EXPECT_EQ(m.cycle(), 0u);
  m.step();
  EXPECT_EQ(out.read_raw(), 0);  // accumulator restarted from its init
}

TEST(Model, DuplicateSignalNamesRejected) {
  Model m("dup");
  m.make_signal("wire", kF16);
  EXPECT_THROW(m.make_signal("wire", kF16), SimError);
}

TEST(Model, AddAfterElaborationRejected) {
  Model m("frozen");
  m.add<Constant>("c", Fix::from_int(kF16, 1));
  m.elaborate();
  EXPECT_THROW(m.add<Constant>("late", Fix::from_int(kF16, 2)), SimError);
}

TEST(Model, FindBlockAndSignal) {
  Model m("find");
  auto& c = m.add<Constant>("c", Fix::from_int(kF16, 1));
  EXPECT_EQ(m.find_block("c"), &c);
  EXPECT_EQ(m.find_block("missing"), nullptr);
  EXPECT_NE(m.find_signal("c.out"), nullptr);
  EXPECT_EQ(m.find_signal("missing"), nullptr);
}

TEST(Model, ResourcesSumOverBlocks) {
  Model m("resources");
  auto& in = m.add<GatewayIn>("in", FixFormat::signed_fix(32, 0));
  auto& c = m.add<Constant>("c", Fix::from_raw(FixFormat::signed_fix(32, 0), 1));
  m.add<AddSub>("a", AddSub::Mode::kAdd, in.out(), c.out(),
                FixFormat::signed_fix(32, 0));
  m.add<AddSub>("b", AddSub::Mode::kAdd, in.out(), c.out(),
                FixFormat::signed_fix(32, 0));
  EXPECT_EQ(m.resources().slices, 2u * slices_for_adder(32));
}

TEST(Signal, DriveChecksFormat) {
  Signal s("wire", kF16);
  EXPECT_THROW(s.drive(Fix::from_raw(FixFormat::signed_fix(8, 0), 1)),
               SimError);
  EXPECT_NO_THROW(s.drive(Fix::from_raw(kF16, 1)));
}

TEST(Signal, SingleDriverEnforced) {
  Model m("drivers");
  auto& c1 = m.add<Constant>("c1", Fix::from_int(kF16, 1));
  Signal& wire = *m.find_signal("c1.out");
  auto& c2 = m.add<Constant>("c2", Fix::from_int(kF16, 2));
  EXPECT_THROW(wire.set_driver(&c2), SimError);
  (void)c1;
}

}  // namespace
}  // namespace mbcosim::sysgen
