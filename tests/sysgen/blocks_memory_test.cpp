// Tests for the memory block set (ROM, single-port RAM, FIFO).
#include "sysgen/blocks_memory.hpp"

#include <gtest/gtest.h>

namespace mbcosim::sysgen {
namespace {

const FixFormat kF16 = FixFormat::signed_fix(16, 0);
const FixFormat kBool = FixFormat::unsigned_fix(1, 0);
const FixFormat kAddr = FixFormat::unsigned_fix(4, 0);

std::vector<Fix> rom_contents() {
  std::vector<Fix> words;
  for (int i = 0; i < 8; ++i) words.push_back(Fix::from_int(kF16, i * 11));
  return words;
}

TEST(Rom, SynchronousReadOneCycleLatency) {
  Model m("t");
  auto& addr = m.add<GatewayIn>("addr", kAddr);
  auto& rom = m.add<Rom>("rom", addr.out(), rom_contents());
  auto& out = m.add<GatewayOut>("o", rom.out());
  addr.set_raw(3);
  m.step();
  EXPECT_EQ(out.read_raw(), 0);  // BRAM output register not loaded yet
  m.step();
  EXPECT_EQ(out.read_raw(), 33);
}

TEST(Rom, AddressClampsToDepth) {
  Model m("t");
  auto& addr = m.add<GatewayIn>("addr", kAddr);
  auto& rom = m.add<Rom>("rom", addr.out(), rom_contents());
  auto& out = m.add<GatewayOut>("o", rom.out());
  addr.set_raw(15);
  m.run(2);
  EXPECT_EQ(out.read_raw(), 77);  // last word
}

TEST(Rom, RejectsEmptyAndMixedFormats) {
  Model m("t");
  auto& addr = m.add<GatewayIn>("addr", kAddr);
  EXPECT_THROW(m.add<Rom>("empty", addr.out(), std::vector<Fix>{}), SimError);
  std::vector<Fix> mixed{Fix::from_int(kF16, 1),
                         Fix::from_raw(FixFormat::signed_fix(8, 0), 1)};
  EXPECT_THROW(m.add<Rom>("mixed", addr.out(), mixed), SimError);
}

TEST(Ram, WriteThenReadBack) {
  Model m("t");
  auto& addr = m.add<GatewayIn>("addr", kAddr);
  auto& data = m.add<GatewayIn>("data", kF16);
  auto& we = m.add<GatewayIn>("we", kBool);
  auto& ram = m.add<SinglePortRam>("ram", 16, kF16, addr.out(), data.out(),
                                   we.out());
  auto& out = m.add<GatewayOut>("o", ram.out());
  addr.set_raw(5);
  data.set_raw(123);
  we.set_bool(true);
  m.step();  // write 123 at 5
  we.set_bool(false);
  m.step();  // read 5
  m.step();
  EXPECT_EQ(out.read_raw(), 123);
  EXPECT_EQ(ram.cell(5).raw(), 123);
}

TEST(Ram, ReadBeforeWriteSemantics) {
  Model m("t");
  auto& addr = m.add<GatewayIn>("addr", kAddr);
  auto& data = m.add<GatewayIn>("data", kF16);
  auto& we = m.add<GatewayIn>("we", kBool);
  auto& ram = m.add<SinglePortRam>("ram", 16, kF16, addr.out(), data.out(),
                                   we.out());
  auto& out = m.add<GatewayOut>("o", ram.out());
  addr.set_raw(2);
  data.set_raw(50);
  we.set_bool(true);
  m.step();  // writes 50; port output captured the OLD contents (0)
  m.step();
  EXPECT_EQ(out.read_raw(), 0);  // value visible is from before the write
  (void)ram;
}

TEST(Fifo, WriteReadFlags) {
  Model m("t");
  auto& data = m.add<GatewayIn>("data", kF16);
  auto& we = m.add<GatewayIn>("we", kBool);
  auto& re = m.add<GatewayIn>("re", kBool);
  auto& fifo = m.add<FifoBlock>("fifo", 4, kF16, data.out(), we.out(),
                                re.out());
  auto& out = m.add<GatewayOut>("o", fifo.data_out());
  auto& empty = m.add<GatewayOut>("e", fifo.empty());
  auto& full = m.add<GatewayOut>("f", fifo.full());

  m.step();
  EXPECT_TRUE(empty.read_bool());
  EXPECT_FALSE(full.read_bool());

  data.set_raw(11);
  we.set_bool(true);
  m.step();  // push 11
  data.set_raw(22);
  m.step();  // push 22
  we.set_bool(false);
  m.step();
  EXPECT_FALSE(empty.read_bool());
  EXPECT_EQ(out.read_raw(), 11);
  EXPECT_EQ(fifo.occupancy(), 2u);

  re.set_bool(true);
  m.step();  // pop 11
  m.step();
  EXPECT_EQ(out.read_raw(), 22);
}

TEST(Fifo, FullBlocksFurtherWrites) {
  Model m("t");
  auto& data = m.add<GatewayIn>("data", kF16);
  auto& we = m.add<GatewayIn>("we", kBool);
  auto& re = m.add<GatewayIn>("re", kBool);
  auto& fifo = m.add<FifoBlock>("fifo", 2, kF16, data.out(), we.out(),
                                re.out());
  auto& full = m.add<GatewayOut>("f", fifo.full());
  we.set_bool(true);
  for (int i = 0; i < 5; ++i) {
    data.set_raw(i);
    m.step();
  }
  EXPECT_EQ(fifo.occupancy(), 2u);  // extra writes dropped by the flag
  m.step();
  EXPECT_TRUE(full.read_bool());
}

TEST(MemoryResources, SmallMapsToDistributedRam) {
  const ResourceVec small = detail::memory_resources(16, 16);
  EXPECT_EQ(small.brams, 0u);
  EXPECT_GT(small.slices, 0u);
  const ResourceVec big = detail::memory_resources(1024, 32);
  EXPECT_GT(big.brams, 0u);
}

}  // namespace
}  // namespace mbcosim::sysgen
