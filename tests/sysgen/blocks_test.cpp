// Behavioural tests for each block in the standard library.
#include "sysgen/blocks_basic.hpp"

#include <gtest/gtest.h>

#include "sysgen/model.hpp"

namespace mbcosim::sysgen {
namespace {

const FixFormat kF16 = FixFormat::signed_fix(16, 0);
const FixFormat kF16_8 = FixFormat::signed_fix(16, 8);
const FixFormat kBool = FixFormat::unsigned_fix(1, 0);

TEST(Blocks, ConstantDrivesValue) {
  Model m("t");
  auto& c = m.add<Constant>("c", Fix::from_double(kF16_8, 1.5));
  auto& out = m.add<GatewayOut>("o", c.out());
  m.step();
  EXPECT_DOUBLE_EQ(out.read().to_double(), 1.5);
}

TEST(Blocks, GatewayInQuantizes) {
  Model m("t");
  auto& in = m.add<GatewayIn>("in", kF16_8);
  auto& out = m.add<GatewayOut>("o", in.out());
  in.set(1.50390625);  // one LSB above 1.5 at 2^-8 resolution
  m.step();
  EXPECT_DOUBLE_EQ(out.read().to_double(), 1.50390625);
  in.set(1000.0);  // saturates
  m.step();
  EXPECT_DOUBLE_EQ(out.read().to_double(), kF16_8.max_raw() / 256.0);
}

TEST(Blocks, AddSubModes) {
  Model m("t");
  auto& a = m.add<GatewayIn>("a", kF16);
  auto& b = m.add<GatewayIn>("b", kF16);
  auto& add = m.add<AddSub>("add", AddSub::Mode::kAdd, a.out(), b.out(), kF16);
  auto& sub = m.add<AddSub>("sub", AddSub::Mode::kSubtract, a.out(), b.out(),
                            kF16);
  auto& out_add = m.add<GatewayOut>("oa", add.out());
  auto& out_sub = m.add<GatewayOut>("os", sub.out());
  a.set_raw(100);
  b.set_raw(42);
  m.step();
  EXPECT_EQ(out_add.read_raw(), 142);
  EXPECT_EQ(out_sub.read_raw(), 58);
}

TEST(Blocks, AddSubSaturateMode) {
  Model m("t");
  auto& a = m.add<GatewayIn>("a", FixFormat::signed_fix(8, 0));
  auto& b = m.add<GatewayIn>("b", FixFormat::signed_fix(8, 0));
  auto& add = m.add<AddSub>("add", AddSub::Mode::kAdd, a.out(), b.out(),
                            FixFormat::signed_fix(8, 0), 0,
                            Quantization::kTruncate, Overflow::kSaturate);
  auto& out = m.add<GatewayOut>("o", add.out());
  a.set_raw(100);
  b.set_raw(100);
  m.step();
  EXPECT_EQ(out.read_raw(), 127);
}

TEST(Blocks, AddSubWithLatency) {
  Model m("t");
  auto& a = m.add<GatewayIn>("a", kF16);
  auto& c = m.add<Constant>("c", Fix::from_int(kF16, 1));
  auto& add = m.add<AddSub>("add", AddSub::Mode::kAdd, a.out(), c.out(), kF16,
                            /*latency=*/2);
  auto& out = m.add<GatewayOut>("o", add.out());
  a.set_raw(41);
  m.step();
  EXPECT_EQ(out.read_raw(), 0);  // still in the pipeline
  m.step();
  EXPECT_EQ(out.read_raw(), 0);
  m.step();
  EXPECT_EQ(out.read_raw(), 42);
}

TEST(Blocks, MultProducesProducts) {
  Model m("t");
  auto& a = m.add<GatewayIn>("a", kF16_8);
  auto& b = m.add<GatewayIn>("b", kF16_8);
  auto& mult = m.add<Mult>("m", a.out(), b.out(),
                           FixFormat::signed_fix(32, 16), /*latency=*/0);
  auto& out = m.add<GatewayOut>("o", mult.out());
  a.set(2.5);
  b.set(-3.0);
  m.step();
  EXPECT_DOUBLE_EQ(out.read().to_double(), -7.5);
}

TEST(Blocks, MultUsesEmbeddedMultipliers) {
  Model m("t");
  auto& a = m.add<GatewayIn>("a", kF16);
  auto& b = m.add<GatewayIn>("b", kF16);
  auto& small = m.add<Mult>("small", a.out(), b.out(), kF16, 0);
  EXPECT_EQ(small.resources().mult18s, 1u);
  auto& aw = m.add<GatewayIn>("aw", FixFormat::signed_fix(32, 0));
  auto& bw = m.add<GatewayIn>("bw", FixFormat::signed_fix(32, 0));
  auto& wide = m.add<Mult>("wide", aw.out(), bw.out(),
                           FixFormat::signed_fix(32, 0), 0);
  EXPECT_EQ(wide.resources().mult18s, 4u);
}

TEST(Blocks, NegateAndConvert) {
  Model m("t");
  auto& a = m.add<GatewayIn>("a", kF16_8);
  auto& neg = m.add<Negate>("n", a.out(), kF16_8);
  auto& conv = m.add<Convert>("c", a.out(), FixFormat::signed_fix(8, 0),
                              Quantization::kRoundHalfUp, Overflow::kSaturate);
  auto& out_n = m.add<GatewayOut>("on", neg.out());
  auto& out_c = m.add<GatewayOut>("oc", conv.out());
  a.set(2.75);
  m.step();
  EXPECT_DOUBLE_EQ(out_n.read().to_double(), -2.75);
  EXPECT_DOUBLE_EQ(out_c.read().to_double(), 3.0);
}

TEST(Blocks, ShiftConst) {
  Model m("t");
  auto& a = m.add<GatewayIn>("a", kF16);
  auto& left = m.add<ShiftConst>("l", a.out(), ShiftConst::Direction::kLeft, 3);
  auto& right = m.add<ShiftConst>(
      "r", a.out(), ShiftConst::Direction::kRightArithmetic, 2);
  auto& ol = m.add<GatewayOut>("ol", left.out());
  auto& og = m.add<GatewayOut>("or", right.out());
  a.set_raw(-12);
  m.step();
  EXPECT_EQ(ol.read_raw(), -96);
  EXPECT_EQ(og.read_raw(), -3);
}

TEST(Blocks, VariableShiftRight) {
  Model m("t");
  auto& a = m.add<GatewayIn>("a", FixFormat::signed_fix(32, 0));
  auto& amount = m.add<GatewayIn>("amt", FixFormat::unsigned_fix(6, 0));
  auto& shift = m.add<VariableShiftRight>("s", a.out(), amount.out(), 31);
  auto& out = m.add<GatewayOut>("o", shift.out());
  a.set_raw(-1024);
  amount.set_raw(3);
  m.step();
  EXPECT_EQ(out.read_raw(), -128);
  amount.set_raw(40);  // clamps to max_shift
  m.step();
  EXPECT_EQ(out.read_raw(), -1);
}

TEST(Blocks, MuxSelects) {
  Model m("t");
  auto& sel = m.add<GatewayIn>("sel", FixFormat::unsigned_fix(2, 0));
  auto& c0 = m.add<Constant>("c0", Fix::from_int(kF16, 10));
  auto& c1 = m.add<Constant>("c1", Fix::from_int(kF16, 20));
  auto& c2 = m.add<Constant>("c2", Fix::from_int(kF16, 30));
  auto& mux = m.add<Mux>("mux", sel.out(),
                         std::vector<Signal*>{&c0.out(), &c1.out(), &c2.out()});
  auto& out = m.add<GatewayOut>("o", mux.out());
  for (int i = 0; i < 3; ++i) {
    sel.set_raw(i);
    m.step();
    EXPECT_EQ(out.read_raw(), 10 * (i + 1));
  }
  sel.set_raw(3);  // out of range clamps to the last input
  m.step();
  EXPECT_EQ(out.read_raw(), 30);
}

TEST(Blocks, MuxRejectsMixedFormats) {
  Model m("t");
  auto& sel = m.add<GatewayIn>("sel", kBool);
  auto& c0 = m.add<Constant>("c0", Fix::from_int(kF16, 1));
  auto& c1 = m.add<Constant>("c1", Fix::from_raw(FixFormat::signed_fix(8, 0), 1));
  EXPECT_THROW(m.add<Mux>("mux", sel.out(),
                          std::vector<Signal*>{&c0.out(), &c1.out()}),
               SimError);
}

TEST(Blocks, RelationalAllOps) {
  Model m("t");
  auto& a = m.add<GatewayIn>("a", kF16);
  auto& b = m.add<GatewayIn>("b", kF16);
  auto& lt = m.add<Relational>("lt", Relational::Op::kLt, a.out(), b.out());
  auto& le = m.add<Relational>("le", Relational::Op::kLe, a.out(), b.out());
  auto& eq = m.add<Relational>("eq", Relational::Op::kEq, a.out(), b.out());
  auto& ne = m.add<Relational>("ne", Relational::Op::kNe, a.out(), b.out());
  auto& gt = m.add<Relational>("gt", Relational::Op::kGt, a.out(), b.out());
  auto& ge = m.add<Relational>("ge", Relational::Op::kGe, a.out(), b.out());
  auto& olt = m.add<GatewayOut>("olt", lt.out());
  auto& ole = m.add<GatewayOut>("ole", le.out());
  auto& oeq = m.add<GatewayOut>("oeq", eq.out());
  auto& one = m.add<GatewayOut>("one", ne.out());
  auto& ogt = m.add<GatewayOut>("ogt", gt.out());
  auto& oge = m.add<GatewayOut>("oge", ge.out());
  a.set_raw(-5);
  b.set_raw(3);
  m.step();
  EXPECT_TRUE(olt.read_bool());
  EXPECT_TRUE(ole.read_bool());
  EXPECT_FALSE(oeq.read_bool());
  EXPECT_TRUE(one.read_bool());
  EXPECT_FALSE(ogt.read_bool());
  EXPECT_FALSE(oge.read_bool());
}

TEST(Blocks, LogicalOps) {
  Model m("t");
  auto& a = m.add<GatewayIn>("a", FixFormat::unsigned_fix(4, 0));
  auto& b = m.add<GatewayIn>("b", FixFormat::unsigned_fix(4, 0));
  auto& and_b = m.add<Logical>("and", Logical::Op::kAnd,
                               std::vector<Signal*>{&a.out(), &b.out()});
  auto& or_b = m.add<Logical>("or", Logical::Op::kOr,
                              std::vector<Signal*>{&a.out(), &b.out()});
  auto& xor_b = m.add<Logical>("xor", Logical::Op::kXor,
                               std::vector<Signal*>{&a.out(), &b.out()});
  auto& not_b = m.add<Logical>("not", Logical::Op::kNot,
                               std::vector<Signal*>{&a.out()});
  auto& o1 = m.add<GatewayOut>("o1", and_b.out());
  auto& o2 = m.add<GatewayOut>("o2", or_b.out());
  auto& o3 = m.add<GatewayOut>("o3", xor_b.out());
  auto& o4 = m.add<GatewayOut>("o4", not_b.out());
  a.set_raw(0b1100);
  b.set_raw(0b1010);
  m.step();
  EXPECT_EQ(o1.read_raw(), 0b1000);
  EXPECT_EQ(o2.read_raw(), 0b1110);
  EXPECT_EQ(o3.read_raw(), 0b0110);
  EXPECT_EQ(o4.read_raw(), 0b0011);
}

TEST(Blocks, SliceExtractsBits) {
  Model m("t");
  auto& a = m.add<GatewayIn>("a", FixFormat::signed_fix(32, 0));
  auto& nibble = m.add<Slice>("s", a.out(), 8, 4);
  auto& out = m.add<GatewayOut>("o", nibble.out());
  a.set_raw(0x00000F00);
  m.step();
  EXPECT_EQ(out.read_raw(), 0xF);
}

TEST(Blocks, SliceRangeChecked) {
  Model m("t");
  auto& a = m.add<GatewayIn>("a", FixFormat::signed_fix(8, 0));
  EXPECT_THROW(m.add<Slice>("s", a.out(), 4, 8), SimError);
}

TEST(Blocks, RegisterWithEnable) {
  Model m("t");
  auto& d = m.add<GatewayIn>("d", kF16);
  auto& en = m.add<GatewayIn>("en", kBool);
  auto& reg = m.add<Register>("r", d.out(), Fix::from_int(kF16, 99),
                              &en.out());
  auto& out = m.add<GatewayOut>("o", reg.out());
  m.step();
  EXPECT_EQ(out.read_raw(), 99);  // initial value
  d.set_raw(5);
  en.set_bool(false);
  m.step();
  m.step();
  EXPECT_EQ(out.read_raw(), 99);  // enable low: held
  en.set_bool(true);
  m.step();  // latches 5
  m.step();
  EXPECT_EQ(out.read_raw(), 5);
}

TEST(Blocks, DelayLine) {
  Model m("t");
  auto& d = m.add<GatewayIn>("d", kF16);
  auto& delay = m.add<Delay>("dl", d.out(), 3);
  auto& out = m.add<GatewayOut>("o", delay.out());
  for (int cycle = 0; cycle < 8; ++cycle) {
    d.set_raw(cycle + 1);
    m.step();
    // Input (cycle+1) presented at cycle c emerges at cycle c+3.
    const i64 expected = cycle >= 3 ? cycle - 2 : 0;
    EXPECT_EQ(out.read_raw(), expected) << "cycle " << cycle;
  }
}

TEST(Blocks, DelayRejectsZeroCycles) {
  Model m("t");
  auto& d = m.add<GatewayIn>("d", kF16);
  EXPECT_THROW(m.add<Delay>("dl", d.out(), 0), SimError);
}

TEST(Blocks, CounterWrapsAtLimit) {
  Model m("t");
  auto& counter = m.add<Counter>("c", FixFormat::unsigned_fix(4, 0), 3);
  auto& out = m.add<GatewayOut>("o", counter.out());
  std::vector<i64> seen;
  for (int i = 0; i < 7; ++i) {
    m.step();
    seen.push_back(out.read_raw());
  }
  EXPECT_EQ(seen, (std::vector<i64>{0, 1, 2, 0, 1, 2, 0}));
}

TEST(Blocks, CounterWithEnableAndReset) {
  Model m("t");
  auto& en = m.add<GatewayIn>("en", kBool);
  auto& rst = m.add<GatewayIn>("rst", kBool);
  auto& counter = m.add<Counter>("c", FixFormat::unsigned_fix(4, 0), 10,
                                 &en.out(), &rst.out());
  auto& out = m.add<GatewayOut>("o", counter.out());
  en.set_bool(true);
  m.run(4);
  EXPECT_EQ(out.read_raw(), 3);
  en.set_bool(false);
  m.run(3);
  EXPECT_EQ(out.read_raw(), 4);  // held after the last enabled cycle
  rst.set_bool(true);
  m.step();
  m.step();
  EXPECT_EQ(out.read_raw(), 0);
}

}  // namespace
}  // namespace mbcosim::sysgen
