// DeadlockDiagnosis: when the deadlock heuristic fires, the report must
// say *what* was blocked — instruction direction, channel, PC and FIFO
// state — not just that the run stopped.
#include <gtest/gtest.h>

#include "core/cosim_engine.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::core {
namespace {

sim::SimSystem build_or_die(sim::SimSystem::Builder& builder) {
  auto built = builder.build();
  if (!built.ok()) throw SimError(built.error());
  return std::move(built).value();
}

TEST(DeadlockDiagnosis, BlockingGetOnEmptyChannelIsFullyDescribed) {
  auto system = build_or_die(sim::SimSystem::Builder()
                                 .program("blocked: get r4, rfsl0\nhalt\n")
                                 .deadlock_threshold(100));
  EXPECT_EQ(system.run(100'000), StopReason::kDeadlock);

  const auto diagnosis = system.deadlock_diagnosis();
  ASSERT_TRUE(diagnosis.has_value());
  EXPECT_TRUE(diagnosis->is_get);
  EXPECT_EQ(diagnosis->channel, "hw_to_mb0");
  EXPECT_EQ(diagnosis->channel_id, 0u);
  EXPECT_EQ(diagnosis->pc, system.symbol("blocked"));  // parked on the get
  EXPECT_EQ(diagnosis->occupancy, 0u);       // blocked because empty
  EXPECT_GT(diagnosis->depth, 0u);
  EXPECT_GE(diagnosis->blocked_cycles, 100u);

  const std::string text = diagnosis->to_string();
  EXPECT_NE(text.find("blocking get"), std::string::npos);
  EXPECT_NE(text.find("hw_to_mb0"), std::string::npos);
}

TEST(DeadlockDiagnosis, BlockingPutOnFullChannelReportsOccupancy) {
  // With no hardware draining mb_to_hw0, the put loop fills the FIFO to
  // depth and then blocks; the diagnosis must show the full FIFO.
  auto system = build_or_die(sim::SimSystem::Builder()
                                 .program("loop:\n"
                                          "  put r3, rfsl0\n"
                                          "  bri loop\n"
                                          "halt\n")
                                 .deadlock_threshold(100));
  EXPECT_EQ(system.run(100'000), StopReason::kDeadlock);

  const auto diagnosis = system.deadlock_diagnosis();
  ASSERT_TRUE(diagnosis.has_value());
  EXPECT_FALSE(diagnosis->is_get);
  EXPECT_EQ(diagnosis->channel, "mb_to_hw0");
  EXPECT_GT(diagnosis->depth, 0u);
  EXPECT_EQ(diagnosis->occupancy, diagnosis->depth);  // blocked because full
  EXPECT_NE(diagnosis->to_string().find("blocking put"), std::string::npos);
}

TEST(DeadlockDiagnosis, AbsentWhenTheRunHalts) {
  auto system = build_or_die(
      sim::SimSystem::Builder().program("addik r3, r3, 1\nhalt\n"));
  EXPECT_EQ(system.run(), StopReason::kHalted);
  EXPECT_FALSE(system.deadlock_diagnosis().has_value());
}

}  // namespace
}  // namespace mbcosim::core
