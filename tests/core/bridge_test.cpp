// FslBridge unit tests: gateway driving, pops on read-ack, pushes on
// write, full-flag behaviour.
#include "core/fsl_bridge.hpp"

#include <gtest/gtest.h>

#include "sysgen/model.hpp"

namespace mbcosim::core {
namespace {

namespace sg = mbcosim::sysgen;
const FixFormat kWord = FixFormat::signed_fix(32, 0);
const FixFormat kBool = FixFormat::unsigned_fix(1, 0);

/// Minimal loopback hardware: echoes every incoming word back, adding 1.
struct Loopback {
  Loopback()
      : model("loopback"),
        data_in(model.add<sg::GatewayIn>("s.data", kWord)),
        exists_in(model.add<sg::GatewayIn>("s.exists", kBool)),
        control_in(model.add<sg::GatewayIn>("s.control", kBool)),
        read_out(model.add<sg::GatewayOut>("s.read", exists_in.out())),
        one(model.add<sg::Constant>("one", Fix::from_int(kWord, 1))),
        plus_one(model.add<sg::AddSub>("inc", sg::AddSub::Mode::kAdd,
                                       data_in.out(), one.out(), kWord)),
        full_in(model.add<sg::GatewayIn>("m.full", kBool)),
        data_out(model.add<sg::GatewayOut>("m.data", plus_one.out())),
        write_out(model.add<sg::GatewayOut>("m.write", exists_in.out())) {}

  void bind(FslBridge& bridge) {
    SlaveBinding slave;
    slave.channel = 0;
    slave.data = &data_in;
    slave.exists = &exists_in;
    slave.control = &control_in;
    slave.read = &read_out;
    bridge.bind_slave(slave);
    MasterBinding master;
    master.channel = 0;
    master.data = &data_out;
    master.write = &write_out;
    master.full = &full_in;
    bridge.bind_master(master);
  }

  void cycle(FslBridge& bridge) {
    bridge.pre_cycle();
    model.step();
    bridge.post_cycle();
  }

  sg::Model model;
  sg::GatewayIn& data_in;
  sg::GatewayIn& exists_in;
  sg::GatewayIn& control_in;
  sg::GatewayOut& read_out;
  sg::Constant& one;
  sg::AddSub& plus_one;
  sg::GatewayIn& full_in;
  sg::GatewayOut& data_out;
  sg::GatewayOut& write_out;
};

TEST(Bridge, EchoesWordsWithIncrement) {
  fsl::FslHub hub;
  FslBridge bridge(hub);
  Loopback hw;
  hw.bind(bridge);

  hub.to_hw(0).try_write(41, false);
  hw.cycle(bridge);
  auto out = hub.from_hw(0).try_read();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->data, 42u);
  EXPECT_FALSE(hub.to_hw(0).exists());  // consumed
}

TEST(Bridge, IdleCycleMovesNothing) {
  fsl::FslHub hub;
  FslBridge bridge(hub);
  Loopback hw;
  hw.bind(bridge);
  hw.cycle(bridge);
  hw.cycle(bridge);
  EXPECT_EQ(bridge.stats().words_to_hw, 0u);
  EXPECT_EQ(bridge.stats().words_from_hw, 0u);
  EXPECT_FALSE(hub.from_hw(0).exists());
}

TEST(Bridge, StatsCountTraffic) {
  fsl::FslHub hub;
  FslBridge bridge(hub);
  Loopback hw;
  hw.bind(bridge);
  for (int i = 0; i < 5; ++i) hub.to_hw(0).try_write(i, false);
  for (int i = 0; i < 5; ++i) hw.cycle(bridge);
  EXPECT_EQ(bridge.stats().words_to_hw, 5u);
  EXPECT_EQ(bridge.stats().words_from_hw, 5u);
  EXPECT_EQ(hub.from_hw(0).occupancy(), 5u);
}

TEST(Bridge, RefusedWritesWhenOutputFull) {
  fsl::FslHub hub(/*depth=*/2);
  FslBridge bridge(hub);
  Loopback hw;  // loopback ignores full (no handshake): words get refused
  hw.bind(bridge);
  // Fill the output FIFO (depth 2) with two echoes...
  for (int i = 0; i < 2; ++i) hub.to_hw(0).try_write(i, false);
  for (int i = 0; i < 2; ++i) hw.cycle(bridge);
  EXPECT_EQ(hub.from_hw(0).occupancy(), 2u);
  // ...then push two more words: their echoes are refused.
  for (int i = 0; i < 2; ++i) hub.to_hw(0).try_write(i + 2, false);
  for (int i = 0; i < 2; ++i) hw.cycle(bridge);
  EXPECT_EQ(hub.from_hw(0).occupancy(), 2u);
  EXPECT_EQ(bridge.stats().refused_writes, 2u);
}

TEST(Bridge, ControlBitForwarded) {
  fsl::FslHub hub;
  FslBridge bridge(hub);
  Loopback hw;
  hw.bind(bridge);
  hub.to_hw(0).try_write(7, true);
  bridge.pre_cycle();
  hw.model.step();
  EXPECT_TRUE(hw.control_in.out().as_bool());
  bridge.post_cycle();
}

TEST(Bridge, BindingValidation) {
  fsl::FslHub hub;
  FslBridge bridge(hub);
  SlaveBinding incomplete;
  EXPECT_THROW(bridge.bind_slave(incomplete), SimError);
  MasterBinding bad_master;
  EXPECT_THROW(bridge.bind_master(bad_master), SimError);
}

}  // namespace
}  // namespace mbcosim::core
