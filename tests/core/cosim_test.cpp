// Integration tests for the co-simulation engine: software + hardware
// advance in lock step through the FSL.
#include "core/cosim_engine.hpp"

#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "sysgen/blocks_basic.hpp"

namespace mbcosim::core {
namespace {

namespace sg = mbcosim::sysgen;
const FixFormat kWord = FixFormat::signed_fix(32, 0);
const FixFormat kBool = FixFormat::unsigned_fix(1, 0);

/// Echo-plus-one peripheral used by the engine tests.
struct EchoHw {
  EchoHw()
      : model("echo"),
        data_in(model.add<sg::GatewayIn>("s.data", kWord)),
        exists_in(model.add<sg::GatewayIn>("s.exists", kBool)),
        control_in(model.add<sg::GatewayIn>("s.control", kBool)),
        read_out(model.add<sg::GatewayOut>("s.read", exists_in.out())),
        one(model.add<sg::Constant>("one", Fix::from_int(kWord, 1))),
        inc(model.add<sg::AddSub>("inc", sg::AddSub::Mode::kAdd,
                                  data_in.out(), one.out(), kWord)),
        data_out(model.add<sg::GatewayOut>("m.data", inc.out())),
        write_out(model.add<sg::GatewayOut>("m.write", exists_in.out())) {}

  void bind(FslBridge& bridge) {
    SlaveBinding slave;
    slave.channel = 0;
    slave.data = &data_in;
    slave.exists = &exists_in;
    slave.control = &control_in;
    slave.read = &read_out;
    bridge.bind_slave(slave);
    MasterBinding master;
    master.channel = 0;
    master.data = &data_out;
    master.write = &write_out;
    bridge.bind_master(master);
  }

  sg::Model model;
  sg::GatewayIn& data_in;
  sg::GatewayIn& exists_in;
  sg::GatewayIn& control_in;
  sg::GatewayOut& read_out;
  sg::Constant& one;
  sg::AddSub& inc;
  sg::GatewayOut& data_out;
  sg::GatewayOut& write_out;
};

struct CoSimFixture {
  explicit CoSimFixture(std::string_view source)
      : program(assembler::assemble_or_throw(source)),
        memory(64 * 1024),
        cpu(isa::CpuConfig{}, memory, &hub),
        engine(cpu, hw.model, hub) {
    memory.load_program(program);
    hw.bind(engine.bridge());
    engine.reset(program.entry());
  }

  assembler::Program program;
  iss::LmbMemory memory;
  fsl::FslHub hub;
  EchoHw hw;
  iss::Processor cpu;
  CoSimEngine engine;
};

TEST(CoSim, RoundTripThroughHardware) {
  CoSimFixture f(
      "  li r3, 41\n"
      "  put r3, rfsl0\n"
      "  get r4, rfsl0\n"   // blocking: waits for the echo
      "  halt\n");
  EXPECT_EQ(f.engine.run(), StopReason::kHalted);
  EXPECT_EQ(f.cpu.reg(4), 42u);
  // The echo is single-cycle, so the blocking get may or may not stall;
  // either way the word round-trips through the hardware model.
  EXPECT_EQ(f.engine.stats().bridge.words_from_hw, 1u);
}

TEST(CoSim, ManyWordsPipeline) {
  CoSimFixture f(
      "  li r5, 10\n"         // count
      "  addk r6, r0, r0\n"   // accumulator of echoed values
      "  addk r7, r0, r0\n"   // i
      "loop:\n"
      "  put r7, rfsl0\n"
      "  get r3, rfsl0\n"
      "  addk r6, r6, r3\n"
      "  addik r7, r7, 1\n"
      "  rsub r4, r7, r5\n"
      "  bnei r4, loop\n"
      "  halt\n");
  EXPECT_EQ(f.engine.run(), StopReason::kHalted);
  // sum of (i + 1) for i = 0..9 = 55.
  EXPECT_EQ(f.cpu.reg(6), 55u);
  EXPECT_EQ(f.engine.stats().bridge.words_to_hw, 10u);
  EXPECT_EQ(f.engine.stats().bridge.words_from_hw, 10u);
}

TEST(CoSim, HardwareAndCpuClocksStayInLockStep) {
  CoSimFixture f(
      "  li r3, 1\n"
      "  put r3, rfsl0\n"
      "  get r4, rfsl0\n"
      "  halt\n");
  f.engine.run();
  EXPECT_EQ(f.hw.model.cycle(), f.cpu.stats().cycles);
}

TEST(CoSim, DeadlockDetected) {
  CoSimFixture f(
      "  get r3, rfsl0\n"   // nothing will ever arrive
      "  halt\n");
  f.engine.set_deadlock_threshold(500);
  EXPECT_EQ(f.engine.run(), StopReason::kDeadlock);
}

TEST(CoSim, CycleLimitRespected) {
  CoSimFixture f(
      "loop: bri loop2\n"
      "loop2: bri loop\n");
  EXPECT_EQ(f.engine.run(100), StopReason::kCycleLimit);
  EXPECT_GE(f.cpu.stats().cycles, 100u);
}

TEST(CoSim, IllegalInstructionReported) {
  CoSimFixture f("  .word 0xFC000000\n");
  EXPECT_EQ(f.engine.run(), StopReason::kIllegal);
}

TEST(CoSim, ResetRestartsBothSides) {
  CoSimFixture f(
      "  li r3, 1\n"
      "  put r3, rfsl0\n"
      "  get r4, rfsl0\n"
      "  halt\n");
  f.engine.run();
  const Word first = f.cpu.reg(4);
  f.engine.reset(f.program.entry());
  EXPECT_EQ(f.cpu.reg(4), 0u);
  EXPECT_EQ(f.engine.run(), StopReason::kHalted);
  EXPECT_EQ(f.cpu.reg(4), first);
}

TEST(CoSim, TickHardwareAdvancesModelOnly) {
  CoSimFixture f("halt\n");
  const Cycle before = f.hw.model.cycle();
  f.engine.tick_hardware(7);
  EXPECT_EQ(f.hw.model.cycle(), before + 7);
  EXPECT_EQ(f.cpu.stats().cycles, 0u);
}

}  // namespace
}  // namespace mbcosim::core
