// The quiescence optimization (paper §III-A: hardware is simulated
// "whenever there is data coming from the processor") must be purely an
// optimization: identical architectural results and identical cycle
// counts, with and without it.
#include <gtest/gtest.h>

#include "apps/cordic/cordic_app.hpp"
#include "apps/cordic/cordic_hw.hpp"
#include "apps/cordic/cordic_sw.hpp"
#include "asm/assembler.hpp"
#include "core/cosim_engine.hpp"

namespace mbcosim::core {
namespace {

struct CordicRig {
  explicit CordicRig(unsigned num_pes, const std::string& source)
      : program(assembler::assemble_or_throw(source)),
        memory(64 * 1024),
        cpu(make_config(), memory, &hub),
        pipeline(apps::cordic::build_cordic_pipeline(num_pes)),
        engine(cpu, *pipeline.model, hub) {
    memory.load_program(program);
    pipeline.bind(engine.bridge(), 0);
    engine.reset(program.entry());
  }

  static isa::CpuConfig make_config() {
    isa::CpuConfig config;
    config.has_barrel_shifter = false;
    return config;
  }

  assembler::Program program;
  iss::LmbMemory memory;
  fsl::FslHub hub;
  iss::Processor cpu;
  apps::cordic::CordicPipeline pipeline;
  CoSimEngine engine;
};

std::string driver_source(unsigned num_pes) {
  auto [x, y] = apps::cordic::make_cordic_dataset(10, 31);
  return apps::cordic::hw_driver_program(x, y, 24, num_pes, 5);
}

TEST(Quiescence, SkipIsCycleExact) {
  for (unsigned p : {2u, 4u, 8u}) {
    const std::string source = driver_source(p);
    CordicRig baseline(p, source);
    ASSERT_EQ(baseline.engine.run(), StopReason::kHalted);

    CordicRig optimized(p, source);
    optimized.engine.set_quiescence_window(p + 16);
    ASSERT_EQ(optimized.engine.run(), StopReason::kHalted);

    EXPECT_EQ(optimized.cpu.stats().cycles, baseline.cpu.stats().cycles)
        << "P=" << p;
    EXPECT_GT(optimized.engine.stats().hw_cycles_skipped, 0u)
        << "the optimization should actually trigger";
    EXPECT_EQ(optimized.engine.stats().hw_cycles_skipped +
                  optimized.engine.stats().hw_cycles_stepped,
              baseline.engine.stats().hw_cycles_stepped);

    // Identical architectural results.
    const Addr results = baseline.program.symbol("results");
    for (unsigned i = 0; i < 10; ++i) {
      EXPECT_EQ(optimized.memory.read_word(results + 4 * i),
                baseline.memory.read_word(results + 4 * i));
    }
  }
}

TEST(Quiescence, SkippedCyclesReported) {
  const std::string source = driver_source(4);
  CordicRig rig(4, source);
  rig.engine.set_quiescence_window(20);
  rig.engine.run();
  const CoSimStats stats = rig.engine.stats();
  // The hardware clock (stepped + skipped) tracks the processor clock.
  EXPECT_EQ(stats.hw_cycles_stepped + stats.hw_cycles_skipped, stats.cycles);
}

TEST(Quiescence, DisabledByDefault) {
  const std::string source = driver_source(2);
  CordicRig rig(2, source);
  rig.engine.run();
  EXPECT_EQ(rig.engine.stats().hw_cycles_skipped, 0u);
  EXPECT_EQ(rig.pipeline.model->cycle(), rig.cpu.stats().cycles);
}

TEST(Quiescence, ResetClearsSkipState) {
  const std::string source = driver_source(2);
  CordicRig rig(2, source);
  rig.engine.set_quiescence_window(18);
  rig.engine.run();
  const Cycle first = rig.cpu.stats().cycles;
  rig.engine.reset(rig.program.entry());
  EXPECT_EQ(rig.engine.stats().hw_cycles_skipped, 0u);
  rig.engine.run();
  EXPECT_EQ(rig.cpu.stats().cycles, first);  // fully reproducible
}

}  // namespace
}  // namespace mbcosim::core
