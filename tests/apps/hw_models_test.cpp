// Unit-level tests of the two application hardware models driven
// directly through their FSL gateways (no processor in the loop) — the
// "simulate the peripheral inside Simulink" workflow of the paper.
#include <gtest/gtest.h>

#include <deque>

#include "apps/cordic/cordic_hw.hpp"
#include "apps/cordic/cordic_reference.hpp"
#include "apps/matmul/matmul_hw.hpp"
#include "apps/matmul/matmul_reference.hpp"

namespace mbcosim::apps {
namespace {

/// Drives a peripheral's FSL gateways like the bridge would: a scripted
/// input stream in, collected output words out.
template <typename Io>
class GatewayDriver {
 public:
  explicit GatewayDriver(sysgen::Model& model, const Io& io)
      : model_(model), io_(io) {}

  void push_word(Word data, bool control) { input_.push_back({data, control}); }

  /// Advance one cycle, presenting the input head and collecting output.
  void cycle() {
    const bool have = !input_.empty();
    io_.s_exists->set_bool(have);
    io_.s_data->set_raw(have ? static_cast<i64>(input_.front().first) : 0);
    io_.s_control->set_bool(have && input_.front().second);
    io_.m_full->set_bool(false);
    model_.step();
    if (io_.s_read->read_bool() && have) input_.pop_front();
    if (io_.m_write->read_bool()) {
      output_.push_back(static_cast<Word>(
          static_cast<u64>(io_.m_data->read_raw()) & 0xFFFFFFFFu));
    }
  }

  void run(unsigned cycles) {
    for (unsigned i = 0; i < cycles; ++i) cycle();
  }

  std::deque<std::pair<Word, bool>> input_;
  std::vector<Word> output_;

 private:
  sysgen::Model& model_;
  const Io& io_;
};

TEST(CordicHwModel, SingleItemThroughPipeline) {
  const auto pipeline = cordic::build_cordic_pipeline(4);
  GatewayDriver driver(*pipeline.model, pipeline.io);

  const i32 x = i32(Fix::from_double(cordic::kDataFormat, 1.5).raw());
  const i32 y = i32(Fix::from_double(cordic::kDataFormat, 0.9).raw());
  driver.push_word(0, true);  // control word: s0 = 0
  driver.push_word(static_cast<Word>(x), false);
  driver.push_word(static_cast<Word>(y), false);
  driver.push_word(0, false);  // Z = 0
  driver.run(20);

  ASSERT_EQ(driver.output_.size(), 3u);  // X, Y, Z after 4 iterations
  const auto expected = cordic::cordic_iterate({x, y, 0}, 0, 4);
  EXPECT_EQ(static_cast<i32>(driver.output_[0]), expected.x);
  EXPECT_EQ(static_cast<i32>(driver.output_[1]), expected.y);
  EXPECT_EQ(static_cast<i32>(driver.output_[2]), expected.z);
}

TEST(CordicHwModel, ControlWordSetsShiftAmount) {
  const auto pipeline = cordic::build_cordic_pipeline(2);
  GatewayDriver driver(*pipeline.model, pipeline.io);
  const i32 x = i32(Fix::from_double(cordic::kDataFormat, 1.0).raw());
  const i32 y = i32(Fix::from_double(cordic::kDataFormat, -0.5).raw());
  driver.push_word(5, true);  // start at shift amount 5
  driver.push_word(static_cast<Word>(x), false);
  driver.push_word(static_cast<Word>(y), false);
  driver.push_word(0, false);
  driver.run(16);
  ASSERT_EQ(driver.output_.size(), 3u);
  const auto expected = cordic::cordic_iterate({x, y, 0}, 5, 2);
  EXPECT_EQ(static_cast<i32>(driver.output_[2]), expected.z);
}

TEST(CordicHwModel, BackToBackItemsStayOrdered) {
  const auto pipeline = cordic::build_cordic_pipeline(3);
  GatewayDriver driver(*pipeline.model, pipeline.io);
  driver.push_word(0, true);
  std::vector<cordic::CordicState> items;
  for (int i = 1; i <= 4; ++i) {
    const i32 x = i32(Fix::from_double(cordic::kDataFormat, 1.0 + i * 0.1).raw());
    const i32 y = i32(Fix::from_double(cordic::kDataFormat, 0.2 * i).raw());
    items.push_back({x, y, 0});
    driver.push_word(static_cast<Word>(x), false);
    driver.push_word(static_cast<Word>(y), false);
    driver.push_word(0, false);
  }
  driver.run(40);
  ASSERT_EQ(driver.output_.size(), 12u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto expected = cordic::cordic_iterate(items[i], 0, 3);
    EXPECT_EQ(static_cast<i32>(driver.output_[3 * i + 2]), expected.z)
        << "item " << i;
  }
}

TEST(MatmulHwModel, BlockRowProducts) {
  const unsigned n = 2;
  const auto peripheral = matmul::build_matmul_peripheral(n);
  GatewayDriver driver(*peripheral.model, peripheral.io);

  // B = [[1, 2], [3, 4]] loaded row-major as control words.
  const i32 b[2][2] = {{1, 2}, {3, 4}};
  for (unsigned k = 0; k < n; ++k) {
    for (unsigned j = 0; j < n; ++j) {
      driver.push_word(static_cast<Word>(b[k][j]), true);
    }
  }
  // Stream one row of A: [5, 7] -> row * B = [5+21, 10+28] = [26, 38].
  driver.push_word(5, false);
  driver.push_word(7, false);
  driver.run(16);
  ASSERT_EQ(driver.output_.size(), 2u);
  EXPECT_EQ(static_cast<i32>(driver.output_[0]), 26);
  EXPECT_EQ(static_cast<i32>(driver.output_[1]), 38);
}

TEST(MatmulHwModel, BLoadedOnceServesManyRows) {
  const unsigned n = 2;
  const auto peripheral = matmul::build_matmul_peripheral(n);
  GatewayDriver driver(*peripheral.model, peripheral.io);
  // B = identity: outputs must echo the A rows.
  driver.push_word(1, true);
  driver.push_word(0, true);
  driver.push_word(0, true);
  driver.push_word(1, true);
  for (const auto& row : {std::pair{3, -4}, {10, 20}, {-7, 7}}) {
    driver.push_word(static_cast<Word>(row.first), false);
    driver.push_word(static_cast<Word>(row.second), false);
  }
  driver.run(30);
  ASSERT_EQ(driver.output_.size(), 6u);
  EXPECT_EQ(static_cast<i32>(driver.output_[0]), 3);
  EXPECT_EQ(static_cast<i32>(driver.output_[1]), -4);
  EXPECT_EQ(static_cast<i32>(driver.output_[2]), 10);
  EXPECT_EQ(static_cast<i32>(driver.output_[3]), 20);
  EXPECT_EQ(static_cast<i32>(driver.output_[4]), -7);
  EXPECT_EQ(static_cast<i32>(driver.output_[5]), 7);
}

TEST(MatmulHwModel, NegativeElementsSignExtend) {
  const unsigned n = 2;
  const auto peripheral = matmul::build_matmul_peripheral(n);
  GatewayDriver driver(*peripheral.model, peripheral.io);
  // B = [[-1, 0], [0, -1]]: outputs are negated A rows (16-bit codes).
  driver.push_word(static_cast<Word>(-1) & 0xFFFF, true);
  driver.push_word(0, true);
  driver.push_word(0, true);
  driver.push_word(static_cast<Word>(-1) & 0xFFFF, true);
  driver.push_word(25, false);
  driver.push_word(static_cast<Word>(-3) & 0xFFFF, false);
  driver.run(16);
  ASSERT_EQ(driver.output_.size(), 2u);
  EXPECT_EQ(static_cast<i32>(driver.output_[0]), -25);
  EXPECT_EQ(static_cast<i32>(driver.output_[1]), 3);
}

TEST(HwModels, ResourceShapesScaleWithParameters) {
  const auto p2 = cordic::build_cordic_pipeline(2);
  const auto p8 = cordic::build_cordic_pipeline(8);
  EXPECT_GT(p8.model->block_count(), p2.model->block_count());
  EXPECT_GT(p8.model->resources().slices, p2.model->resources().slices);
  const auto m2 = matmul::build_matmul_peripheral(2);
  const auto m4 = matmul::build_matmul_peripheral(4);
  EXPECT_EQ(m2.model->resources().mult18s, 2u);
  EXPECT_EQ(m4.model->resources().mult18s, 4u);
}

}  // namespace
}  // namespace mbcosim::apps
