// Block matrix multiplication application tests.
#include <gtest/gtest.h>

#include "apps/matmul/matmul_app.hpp"

namespace mbcosim::apps::matmul {
namespace {

TEST(MatmulReference, KnownProduct) {
  Matrix a(2);
  a.at(0, 0) = 1; a.at(0, 1) = 2;
  a.at(1, 0) = 3; a.at(1, 1) = 4;
  Matrix b(2);
  b.at(0, 0) = 5; b.at(0, 1) = 6;
  b.at(1, 0) = 7; b.at(1, 1) = 8;
  const Matrix c = multiply_reference(a, b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(MatmulReference, IdentityIsNeutral) {
  const Matrix a = make_matrix(8, 77);
  Matrix identity(8);
  for (unsigned i = 0; i < 8; ++i) identity.at(i, i) = 1;
  const Matrix left = multiply_reference(identity, a);
  const Matrix right = multiply_reference(a, identity);
  EXPECT_EQ(left.data, a.data);
  EXPECT_EQ(right.data, a.data);
}

TEST(MatmulReference, SizeMismatchRejected) {
  EXPECT_THROW(multiply_reference(Matrix(2), Matrix(4)), SimError);
}

TEST(MatmulDataset, ElementsAreSmall) {
  const Matrix m = make_matrix(16, 5);
  for (const i32 v : m.data) {
    EXPECT_GE(v, -50);
    EXPECT_LE(v, 50);
  }
}

TEST(MatmulSw, PureSoftwareMatchesReference) {
  for (unsigned n : {2u, 4u, 8u, 12u}) {
    const Matrix a = make_matrix(n, n);
    const Matrix b = make_matrix(n, n + 1);
    MatmulRunConfig config;
    config.matrix_size = n;
    config.block_size = 0;
    const auto result = run_matmul(config, a, b);
    const Matrix expected = multiply_reference(a, b);
    EXPECT_EQ(result.c.data, expected.data) << "N=" << n;
  }
}

struct HwCase {
  unsigned matrix_size;
  unsigned block_size;
};

class MatmulHwConfigs : public ::testing::TestWithParam<HwCase> {};

TEST_P(MatmulHwConfigs, MatchesReference) {
  const auto [matrix_size, block_size] = GetParam();
  const Matrix a = make_matrix(matrix_size, matrix_size * 3);
  const Matrix b = make_matrix(matrix_size, matrix_size * 7);
  MatmulRunConfig config;
  config.matrix_size = matrix_size;
  config.block_size = block_size;
  const auto result = run_matmul(config, a, b);
  const Matrix expected = multiply_reference(a, b);
  EXPECT_EQ(result.c.data, expected.data);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, MatmulHwConfigs,
    ::testing::Values(HwCase{4, 2}, HwCase{4, 4}, HwCase{8, 2}, HwCase{8, 4},
                      HwCase{12, 2}, HwCase{12, 3}, HwCase{16, 2},
                      HwCase{16, 4}),
    [](const ::testing::TestParamInfo<HwCase>& info) {
      return "N" + std::to_string(info.param.matrix_size) + "_b" +
             std::to_string(info.param.block_size);
    });

TEST(MatmulPerf, Paper4x4SpeedupShape) {
  // Figure 7 at N = 16: the 4x4-block design is about 2.2x faster than
  // pure software.
  const Matrix a = make_matrix(16, 1);
  const Matrix b = make_matrix(16, 2);
  MatmulRunConfig sw{16, 0};
  MatmulRunConfig hw4{16, 4};
  const auto sw_result = run_matmul(sw, a, b);
  const auto hw_result = run_matmul(hw4, a, b);
  const double speedup = double(sw_result.cycles) / double(hw_result.cycles);
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 3.5);
}

TEST(MatmulPerf, Paper2x2PenaltyShape) {
  // Figure 7's crossover: the 2x2-block design LOSES to pure software
  // (paper: 8.8% more execution time) because per-word communication
  // overhead exceeds the offloaded MAC work.
  const Matrix a = make_matrix(16, 1);
  const Matrix b = make_matrix(16, 2);
  MatmulRunConfig sw{16, 0};
  MatmulRunConfig hw2{16, 2};
  const auto sw_result = run_matmul(sw, a, b);
  const auto hw_result = run_matmul(hw2, a, b);
  EXPECT_GT(hw_result.cycles, sw_result.cycles);
  // The penalty is small (paper: under ~15%).
  EXPECT_LT(double(hw_result.cycles) / double(sw_result.cycles), 1.25);
}

TEST(MatmulResources, MultiplierBudget) {
  const Matrix a = make_matrix(8, 1);
  const Matrix b = make_matrix(8, 2);
  MatmulRunConfig hw2{8, 2};
  MatmulRunConfig hw4{8, 4};
  EXPECT_EQ(run_matmul(hw2, a, b).estimated_resources.mult18s, 5u);
  EXPECT_EQ(run_matmul(hw4, a, b).estimated_resources.mult18s, 7u);
}

TEST(MatmulApp, RejectsBadConfigurations) {
  const Matrix a = make_matrix(8, 1);
  const Matrix b = make_matrix(8, 2);
  EXPECT_THROW((void)hw_driver_program(a, b, 5), SimError);
  EXPECT_THROW((void)hw_driver_program(a, b, 3), SimError);  // 8 % 3 != 0
  EXPECT_THROW((void)build_matmul_peripheral(1), SimError);
  EXPECT_THROW((void)build_matmul_peripheral(5), SimError);
  MatmulRunConfig mismatched{16, 0};
  EXPECT_THROW((void)run_matmul(mismatched, a, b), SimError);
}

TEST(MatmulApp, FslWordCountMatchesSchedule) {
  const unsigned n = 2;
  const unsigned size = 8;
  const unsigned nb = size / n;
  const Matrix a = make_matrix(size, 1);
  const Matrix b = make_matrix(size, 2);
  MatmulRunConfig config{size, n};
  const auto result = run_matmul(config, a, b);
  // Per (kb, jb): n^2 control words; per (kb, jb, ib): n rows x n data
  // down and n partials back.
  const u64 expected = u64(nb) * nb * n * n            // B loads
                       + u64(nb) * nb * nb * n * n     // A words
                       + u64(nb) * nb * nb * n * n;    // results
  EXPECT_EQ(result.fsl_words, expected);
}

}  // namespace
}  // namespace mbcosim::apps::matmul
