// CORDIC division application tests: reference model properties, software
// strategy equivalence, hardware pipeline correctness and accuracy.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/cordic/cordic_app.hpp"

namespace mbcosim::apps::cordic {
namespace {

TEST(CordicReference, ConvergesToQuotient) {
  for (const auto& [a, b] : {std::pair{1.0, 0.5}, {1.5, -1.2}, {0.7, 1.3},
                             {2.0, 3.5}, {1.0, -1.0}}) {
    const double q = cordic_divide(a, b, 28);
    EXPECT_NEAR(q, b / a, cordic_error_bound(28)) << b << "/" << a;
  }
}

TEST(CordicReference, AccuracyImprovesWithIterations) {
  const double a = 1.3;
  const double b = 0.9;
  double previous_error = 1e9;
  for (unsigned iterations : {4u, 8u, 16u, 24u}) {
    const double error = std::fabs(cordic_divide(a, b, iterations) - b / a);
    EXPECT_LE(error, previous_error + 1e-12);
    previous_error = error;
  }
  EXPECT_LT(previous_error, 1e-5);
}

TEST(CordicReference, IterateIsComposable) {
  // Running 24 iterations at once equals 6 passes of 4 iterations with
  // the shift amount carried across passes — the recirculation scheme.
  const i32 x = i32(Fix::from_double(kDataFormat, 1.25).raw());
  const i32 y = i32(Fix::from_double(kDataFormat, -0.8).raw());
  const CordicState direct = cordic_iterate({x, y, 0}, 0, 24);
  CordicState staged{x, y, 0};
  for (unsigned pass = 0; pass < 6; ++pass) {
    staged = cordic_iterate(staged, pass * 4, 4);
  }
  EXPECT_EQ(staged.x, direct.x);
  EXPECT_EQ(staged.y, direct.y);
  EXPECT_EQ(staged.z, direct.z);
}

TEST(CordicReference, ErrorBoundMonotone) {
  EXPECT_GT(cordic_error_bound(8), cordic_error_bound(16));
  EXPECT_GT(cordic_error_bound(16), cordic_error_bound(24));
}

TEST(CordicDataset, InConvergenceRegion) {
  auto [x, y] = make_cordic_dataset(50, 99);
  ASSERT_EQ(x.size(), 50u);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = Fix::from_raw(kDataFormat, x[i]).to_double();
    const double b = Fix::from_raw(kDataFormat, y[i]).to_double();
    EXPECT_GT(a, 0.0);
    EXPECT_LT(std::fabs(b / a), 2.0);
  }
}

struct StrategyCase {
  ShiftStrategy strategy;
  const char* name;
};

class SwStrategies : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(SwStrategies, MatchesReferenceBitExactly) {
  auto [x, y] = make_cordic_dataset(10, 5);
  CordicRunConfig config;
  config.num_pes = 0;
  config.iterations = 24;
  config.items = 10;
  config.sw_strategy = GetParam().strategy;
  const auto result = run_cordic(config, x, y);
  const auto expected = cordic_expected(config, x, y);
  ASSERT_EQ(result.quotients_raw.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.quotients_raw[i], expected[i]) << "item " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, SwStrategies,
    ::testing::Values(StrategyCase{ShiftStrategy::kBarrelShifter, "barrel"},
                      StrategyCase{ShiftStrategy::kShiftLoop, "shiftloop"},
                      StrategyCase{ShiftStrategy::kIncremental, "incremental"}),
    [](const ::testing::TestParamInfo<StrategyCase>& info) {
      return info.param.name;
    });

TEST(CordicSwStrategies, CostOrdering) {
  // Shift-loop (naive C) must be slower than the barrel-shifter version,
  // which must be slower than or equal to the incremental rewrite.
  auto [x, y] = make_cordic_dataset(5, 17);
  auto cycles_for = [&](ShiftStrategy strategy) {
    CordicRunConfig config;
    config.num_pes = 0;
    config.iterations = 24;
    config.items = 5;
    config.sw_strategy = strategy;
    return run_cordic(config, x, y).cycles;
  };
  const Cycle naive = cycles_for(ShiftStrategy::kShiftLoop);
  const Cycle barrel = cycles_for(ShiftStrategy::kBarrelShifter);
  const Cycle incremental = cycles_for(ShiftStrategy::kIncremental);
  EXPECT_GT(naive, 2 * barrel);       // shift loops dominate
  EXPECT_GT(naive, 2 * incremental);
  // The barrel-shifter and incremental rewrites do the same per-iteration
  // work (two 1-cycle shifts); they differ only in per-item setup.
  EXPECT_NEAR(double(barrel) / double(incremental), 1.0, 0.1);
}

class HwConfigurations : public ::testing::TestWithParam<unsigned> {};

TEST_P(HwConfigurations, BitExactAgainstReference) {
  const unsigned num_pes = GetParam();
  auto [x, y] = make_cordic_dataset(10, 1000 + num_pes);
  CordicRunConfig config;
  config.num_pes = num_pes;
  config.iterations = 24;
  config.items = 10;
  const auto result = run_cordic(config, x, y);
  const auto expected = cordic_expected(config, x, y);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.quotients_raw[i], expected[i])
        << "P=" << num_pes << " item " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(PipelineDepths, HwConfigurations,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

TEST(CordicHw, ExecutionTimeDecreasesWithP) {
  auto [x, y] = make_cordic_dataset(20, 2);
  Cycle previous = ~Cycle{0};
  for (unsigned p : {2u, 4u, 6u, 8u}) {
    CordicRunConfig config;
    config.num_pes = p;
    config.iterations = 24;
    config.items = 20;
    const auto result = run_cordic(config, x, y);
    EXPECT_LT(result.cycles, previous) << "P=" << p;
    previous = result.cycles;
  }
}

TEST(CordicHw, HwBeatsNaiveSoftware) {
  // Figure 5's headline: P = 4 is several times faster than the pure
  // software implementation at 24 iterations.
  auto [x, y] = make_cordic_dataset(20, 3);
  CordicRunConfig sw;
  sw.num_pes = 0;
  sw.iterations = 24;
  sw.items = 20;
  CordicRunConfig hw = sw;
  hw.num_pes = 4;
  const auto sw_result = run_cordic(sw, x, y);
  const auto hw_result = run_cordic(hw, x, y);
  EXPECT_GT(double(sw_result.cycles) / double(hw_result.cycles), 3.0);
}

TEST(CordicHw, IterationsRoundUpToMultipleOfP) {
  // 32 iterations on P = 6 runs 6 passes = 36 effective iterations.
  auto [x, y] = make_cordic_dataset(5, 4);
  CordicRunConfig config;
  config.num_pes = 6;
  config.iterations = 32;
  config.items = 5;
  const auto result = run_cordic(config, x, y);
  const auto expected = cordic_expected(config, x, y);  // 36 iterations
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.quotients_raw[i], expected[i]);
  }
}

TEST(CordicHw, FslTrafficMatchesSchedule) {
  auto [x, y] = make_cordic_dataset(5, 6);
  CordicRunConfig config;
  config.num_pes = 4;
  config.iterations = 24;
  config.items = 5;
  const auto result = run_cordic(config, x, y);
  // Per pass: 1 control + 3*5 data words down, 3*5 results back.
  const u64 passes = cordic_passes(24, 4);
  EXPECT_EQ(result.fsl_words, passes * (1 + 15) + passes * 15);
}

TEST(CordicHw, ResourceEstimatesPopulated) {
  auto [x, y] = make_cordic_dataset(5, 7);
  CordicRunConfig config;
  config.num_pes = 4;
  config.iterations = 24;
  config.items = 5;
  const auto result = run_cordic(config, x, y);
  EXPECT_GT(result.estimated_resources.slices, 500u);
  EXPECT_EQ(result.estimated_resources.mult18s, 3u);
  EXPECT_GE(result.estimated_resources.brams, 1u);
  EXPECT_LE(result.implemented_resources.slices,
            result.estimated_resources.slices);
}

TEST(CordicApp, RejectsBadConfigurations) {
  auto [x, y] = make_cordic_dataset(5, 8);
  EXPECT_THROW((void)hw_driver_program(x, y, 24, 0), SimError);
  EXPECT_THROW((void)hw_driver_program(x, y, 24, 4, 6), SimError);   // FIFO overflow
  EXPECT_THROW((void)hw_driver_program(x, y, 24, 4, 3), SimError);   // 5 % 3 != 0
  EXPECT_THROW((void)pure_software_program(x, y, 0,
                                           ShiftStrategy::kShiftLoop),
               SimError);
  EXPECT_THROW((void)build_cordic_pipeline(0), SimError);
}

}  // namespace
}  // namespace mbcosim::apps::cordic
