// Checkpoint subsystem tests, from codec to full system:
//
//   - the byte codec and sealed image container, including one test per
//     stable [ckpt-*] error code on a damaged image,
//   - rtl::Simulator net-state round trips (save mid-run, resume
//     bit-exactly in a freshly elaborated kernel),
//   - SimSystem save -> restore -> run golden-state comparisons against
//     an uninterrupted run: single-core, the 3-core CORDIC farm from
//     examples/machines at 1/2/8 workers, a mid-quantum debugger stop,
//     and the Builder::checkpoint_every periodic-snapshot path.
//
// Runs as its own executable under the `ckpt` ctest label so the asan
// and tsan presets can sweep it next to the machine tests.
#include <array>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/machine_peripherals.hpp"
#include "ckpt/ckpt.hpp"
#include "core/manycore.hpp"
#include "isa/isa.hpp"
#include "iss/processor.hpp"
#include "machine/machine_desc.hpp"
#include "obs/jsonl_sink.hpp"
#include "rtl/kernel.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim {
namespace {

[[nodiscard]] std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// The error message must carry the stable bracketed code as a prefix —
/// that is the dispatchable part of the contract.
void expect_code(const std::string& message, std::size_t code_index) {
  EXPECT_EQ(message.rfind(ckpt::kCkptErrorCodes[code_index], 0), 0u)
      << "want prefix " << ckpt::kCkptErrorCodes[code_index] << ", got: "
      << message;
}

// ------------------------------------------------------------ byte codec

TEST(CkptCodec, RoundTripsEveryFieldType) {
  ckpt::Writer writer;
  writer.write_u8(0xab);
  writer.write_u16(0xbeef);
  writer.write_u32(0xdeadbeefu);
  writer.write_u64(0x0123456789abcdefull);
  writer.write_i64(-42);
  writer.write_bool(true);
  writer.write_bool(false);
  writer.write_str("quantum");
  const unsigned char raw[3] = {1, 2, 3};
  writer.write_bytes(raw, sizeof raw);

  ckpt::Reader reader(writer.buffer());
  EXPECT_EQ(reader.read_u8(), 0xab);
  EXPECT_EQ(reader.read_u16(), 0xbeef);
  EXPECT_EQ(reader.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.read_i64(), -42);
  EXPECT_TRUE(reader.read_bool());
  EXPECT_FALSE(reader.read_bool());
  EXPECT_EQ(reader.read_str(), "quantum");
  unsigned char back[3] = {};
  EXPECT_TRUE(reader.read_bytes(back, sizeof back));
  EXPECT_EQ(back[2], 3);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(CkptCodec, EncodingIsLittleEndianBytes) {
  ckpt::Writer writer;
  writer.write_u32(0x04030201u);
  ASSERT_EQ(writer.buffer().size(), 4u);
  EXPECT_EQ(writer.buffer()[0], 0x01);
  EXPECT_EQ(writer.buffer()[3], 0x04);
}

TEST(CkptCodec, ReaderLatchesUnderrunInsteadOfThrowing) {
  const unsigned char two[2] = {0x11, 0x22};
  ckpt::Reader reader(two, sizeof two);
  EXPECT_EQ(reader.read_u64(), 0x2211u);  // short read pads with zeros
  EXPECT_FALSE(reader.ok());
  // Latched: later reads stay zero and ok() stays false.
  EXPECT_EQ(reader.read_u32(), 0u);
  EXPECT_FALSE(reader.ok());
}

// --------------------------------------------------------- sealed images

[[nodiscard]] std::vector<unsigned char> sample_image() {
  ckpt::Writer writer;
  writer.write_str("payload under test");
  writer.write_u64(7);
  return ckpt::seal(writer.take());
}

TEST(CkptImage, SealUnsealRoundTrips) {
  const std::vector<unsigned char> image = sample_image();
  ASSERT_GE(image.size(), ckpt::kHeaderBytes);
  const auto payload = ckpt::unseal(image);
  ASSERT_TRUE(payload.ok()) << payload.error();
  ckpt::Reader reader(payload.value());
  EXPECT_EQ(reader.read_str(), "payload under test");
  EXPECT_EQ(reader.read_u64(), 7u);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(CkptImage, FileRoundTripAndIoErrors) {
  const std::vector<unsigned char> image = sample_image();
  const std::string path = tmp_path("ckpt_image_roundtrip.ckpt");
  ASSERT_TRUE(ckpt::write_file(path, image).ok);
  const auto back = ckpt::read_file(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value(), image);

  expect_code(ckpt::read_file(tmp_path("no/such/dir/x.ckpt")).error(), 0);
  expect_code(ckpt::write_file(tmp_path("no/such/dir/x.ckpt"), image).message,
              0);
}

// On-disk damage through read_sealed (read_file + unseal): every shape
// of a torn or tampered checkpoint file must come back as a structured
// [ckpt-*] error — never UB, never an exception. This is the exact path
// journal recovery takes when deciding whether to skip a record.
TEST(CkptImage, ReadSealedRejectsDamagedFilesStructurally) {
  const std::vector<unsigned char> image = sample_image();
  const std::string path = tmp_path("ckpt_damaged.ckpt");

  // Intact file: round-trips through the one-step reader.
  ASSERT_TRUE(ckpt::write_file(path, image).ok);
  const auto payload = ckpt::read_sealed(path);
  ASSERT_TRUE(payload.ok()) << payload.error();
  ckpt::Reader reader(payload.value());
  EXPECT_EQ(reader.read_str(), "payload under test");

  // Zero-length file (crash before any byte landed).
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    expect_code(ckpt::read_sealed(path).error(), 3);
  }

  // Truncated mid-payload (crash mid-write without the tmp+rename
  // discipline): shorter than the header promises.
  {
    std::vector<unsigned char> torn(image.begin(), image.end() - 5);
    ASSERT_TRUE(ckpt::write_file(path, torn).ok);
    expect_code(ckpt::read_sealed(path).error(), 3);
  }

  // Truncated inside the header itself.
  {
    std::vector<unsigned char> stub(image.begin(),
                                    image.begin() + ckpt::kHeaderBytes / 2);
    ASSERT_TRUE(ckpt::write_file(path, stub).ok);
    expect_code(ckpt::read_sealed(path).error(), 3);
  }

  // A single flipped payload bit: the FNV-1a seal catches it.
  {
    std::vector<unsigned char> flipped = image;
    flipped[ckpt::kHeaderBytes] ^= 0x20;
    ASSERT_TRUE(ckpt::write_file(path, flipped).ok);
    expect_code(ckpt::read_sealed(path).error(), 4);
  }

  // Missing file.
  expect_code(ckpt::read_sealed(tmp_path("never_written.ckpt")).error(), 0);
}

TEST(CkptImage, RejectsForeignBytesAsNotACheckpoint) {
  std::vector<unsigned char> image = sample_image();
  image[0] ^= 0xff;  // not "MBCK" any more
  expect_code(ckpt::unseal(image).error(), 1);

  // Shorter than the header itself: reported as truncation, since the
  // magic cannot even be read.
  const std::vector<unsigned char> tiny = {'M', 'B'};
  expect_code(ckpt::unseal(tiny).error(), 3);
}

TEST(CkptImage, RejectsVersionSkew) {
  std::vector<unsigned char> image = sample_image();
  image[4] = static_cast<unsigned char>(ckpt::kFormatVersion + 1);
  expect_code(ckpt::unseal(image).error(), 2);
}

TEST(CkptImage, RejectsTruncation) {
  std::vector<unsigned char> image = sample_image();
  image.resize(image.size() - 1);
  expect_code(ckpt::unseal(image).error(), 3);
}

TEST(CkptImage, RejectsPayloadCorruption) {
  std::vector<unsigned char> image = sample_image();
  image[ckpt::kHeaderBytes + 3] ^= 0x01;  // checksum no longer matches
  expect_code(ckpt::unseal(image).error(), 4);
}

// ------------------------------------------------------ rtl::Simulator

/// An 8-bit counter clocked by `clk`: the smallest circuit with real
/// sequential state in kernel nets.
struct CounterCircuit {
  rtl::Simulator sim;
  rtl::Net* clk = nullptr;
  rtl::Net* count = nullptr;

  CounterCircuit() {
    clk = &sim.net("clk", 1, 0);
    count = &sim.net("count", 8, 0);
    sim.process("counter", {clk}, [this] {
      if (clk->value() == 1) sim.assign(*count, (count->value() + 1) & 0xff);
    });
    sim.start();
  }
};

TEST(CkptRtl, SimulatorResumesBitExactly) {
  CounterCircuit original;
  for (int i = 0; i < 37; ++i) original.sim.tick(*original.clk);
  ASSERT_EQ(original.count->value(), 37u);

  ckpt::Writer writer;
  original.sim.save_state(writer);
  const std::vector<unsigned char> state = writer.take();

  CounterCircuit resumed;
  ckpt::Reader reader(state);
  ASSERT_TRUE(resumed.sim.load_state(reader));
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(resumed.count->value(), 37u);

  // Both simulators must now agree tick for tick — values and kernel
  // statistics, since the stats are part of the saved state.
  for (int i = 0; i < 100; ++i) {
    original.sim.tick(*original.clk);
    resumed.sim.tick(*resumed.clk);
    ASSERT_EQ(resumed.count->value(), original.count->value()) << "tick " << i;
  }
  EXPECT_EQ(resumed.sim.stats().events, original.sim.stats().events);
  EXPECT_EQ(resumed.sim.stats().clock_cycles, original.sim.stats().clock_cycles);
}

TEST(CkptRtl, LoadRejectsADifferentCircuit) {
  CounterCircuit original;
  original.sim.tick(*original.clk);
  ckpt::Writer writer;
  original.sim.save_state(writer);
  const std::vector<unsigned char> state = writer.take();

  rtl::Simulator other;
  other.net("clk", 1, 0);
  other.net("wide_count", 16, 0);  // same net count, wrong width
  other.start();
  ckpt::Reader reader(state);
  EXPECT_FALSE(other.load_state(reader));
}

// ------------------------------------------------------------ SimSystem

/// ~1.5k-cycle single-core workload with an architectural result.
constexpr const char* kSumProgram = R"(
start:
  li r3, 200
  addk r4, r0, r0
loop:
  addk r4, r4, r3
  addik r3, r3, -1
  bnei r3, loop
  la r5, result
  swi r4, r5, 0
  halt
result: .space 4
)";

struct FinalState {
  core::CoSimStats stats;
  std::vector<Word> regs;
  Word result = 0;
};

[[nodiscard]] FinalState finish(sim::SimSystem& system) {
  EXPECT_EQ(system.run(), core::StopReason::kHalted);
  FinalState state;
  state.stats = system.stats();
  for (unsigned r = 0; r < isa::kNumRegisters; ++r) {
    state.regs.push_back(system.cpu().reg(r));
  }
  state.result = system.word("result");
  return state;
}

void expect_same(const FinalState& got, const FinalState& want) {
  EXPECT_EQ(got.stats.cycles, want.stats.cycles);
  EXPECT_EQ(got.stats.instructions, want.stats.instructions);
  EXPECT_EQ(got.stats.fsl_stall_cycles, want.stats.fsl_stall_cycles);
  EXPECT_EQ(got.regs, want.regs);
  EXPECT_EQ(got.result, want.result);
}

TEST(CkptSystem, SingleCoreRestoreRunMatchesFreeRun) {
  auto free_built = sim::SimSystem::Builder().program(kSumProgram).build();
  ASSERT_TRUE(free_built.ok()) << free_built.error();
  sim::SimSystem free_run = std::move(free_built).value();
  const FinalState want = finish(free_run);
  ASSERT_EQ(want.result, 20100u);  // sum 1..200

  auto saver_built = sim::SimSystem::Builder().program(kSumProgram).build();
  ASSERT_TRUE(saver_built.ok()) << saver_built.error();
  sim::SimSystem saver = std::move(saver_built).value();
  ASSERT_EQ(saver.run(500), core::StopReason::kCycleLimit);
  const std::vector<unsigned char> image = saver.snapshot();

  auto resumed_built = sim::SimSystem::Builder().program(kSumProgram).build();
  ASSERT_TRUE(resumed_built.ok()) << resumed_built.error();
  sim::SimSystem resumed = std::move(resumed_built).value();
  ASSERT_TRUE(resumed.restore_image(image).ok);
  expect_same(finish(resumed), want);

  // And the saver itself, running on past the snapshot, agrees too: the
  // snapshot is a pure observation.
  expect_same(finish(saver), want);
}

// Snapshot taken while a translated superblock is live: the hot loop of
// kSumProgram is far past the dbt promotion threshold at cycle 500. The
// restore must drop every translation (the cached text belongs to the
// pre-restore image), restart the dbt counters, regenerate the blocks
// lazily and still replay to the bit-exact same end state.
TEST(CkptSystem, RestoreAcrossHotBlockRegeneratesTranslations) {
  auto free_built = sim::SimSystem::Builder().program(kSumProgram).build();
  ASSERT_TRUE(free_built.ok()) << free_built.error();
  sim::SimSystem free_run = std::move(free_built).value();
  const FinalState want = finish(free_run);

  auto saver_built = sim::SimSystem::Builder().program(kSumProgram).build();
  ASSERT_TRUE(saver_built.ok()) << saver_built.error();
  sim::SimSystem saver = std::move(saver_built).value();
  ASSERT_EQ(saver.cpu().exec_tier(), iss::ExecTier::kDbt);
  ASSERT_EQ(saver.run(500), core::StopReason::kCycleLimit);
  // The loop is hot and running inside a translated superblock.
  const iss::DbtStats at_save = saver.cpu().dbt_stats();
  ASSERT_GE(at_save.blocks_translated, 1u);
  ASSERT_GT(at_save.dbt_instructions, 0u);
  const std::vector<unsigned char> image = saver.snapshot();

  auto resumed_built = sim::SimSystem::Builder().program(kSumProgram).build();
  ASSERT_TRUE(resumed_built.ok()) << resumed_built.error();
  sim::SimSystem resumed = std::move(resumed_built).value();
  ASSERT_TRUE(resumed.restore_image(image).ok);
  // Restore retired all translation state: the counters restart.
  EXPECT_EQ(resumed.cpu().dbt_stats().blocks_translated, 0u);
  EXPECT_EQ(resumed.cpu().dbt_stats().dbt_instructions, 0u);

  expect_same(finish(resumed), want);
  // The remaining ~1k cycles re-promoted the loop from scratch.
  EXPECT_GE(resumed.cpu().dbt_stats().blocks_translated, 1u);
  EXPECT_GT(resumed.cpu().dbt_stats().dbt_instructions, 0u);
}

TEST(CkptSystem, SaveCheckpointRestoreFileRoundTrip) {
  const std::string path = tmp_path("ckpt_single_core.ckpt");
  auto a_built = sim::SimSystem::Builder().program(kSumProgram).build();
  ASSERT_TRUE(a_built.ok()) << a_built.error();
  sim::SimSystem a = std::move(a_built).value();
  ASSERT_EQ(a.run(300), core::StopReason::kCycleLimit);
  ASSERT_TRUE(a.save_checkpoint(path).ok);
  const FinalState want = finish(a);

  auto b_built = sim::SimSystem::Builder().program(kSumProgram).build();
  ASSERT_TRUE(b_built.ok()) << b_built.error();
  sim::SimSystem b = std::move(b_built).value();
  ASSERT_TRUE(b.restore(path).ok);
  expect_same(finish(b), want);
}

TEST(CkptSystem, RestoreRejectsADifferentMachineShape) {
  auto a_built = sim::SimSystem::Builder().program(kSumProgram).build();
  ASSERT_TRUE(a_built.ok()) << a_built.error();
  sim::SimSystem a = std::move(a_built).value();
  const std::vector<unsigned char> image = a.snapshot();

  auto b_built = sim::SimSystem::Builder().program("halt\n").build();
  ASSERT_TRUE(b_built.ok()) << b_built.error();
  sim::SimSystem b = std::move(b_built).value();
  const Status status = b.restore_image(image);
  ASSERT_FALSE(status.ok);
  expect_code(status.message, 5);

  // Not-a-checkpoint bytes through the same entry point.
  std::vector<unsigned char> garbage(64, 0x5a);
  expect_code(b.restore_image(garbage).message, 1);
}

TEST(CkptSystem, PeriodicCheckpointsReplayToTheSameEnd) {
  const std::string prefix = tmp_path("ckpt_every_");
  auto chunked_built = sim::SimSystem::Builder()
                           .program(kSumProgram)
                           .checkpoint_every(400, prefix)
                           .build();
  ASSERT_TRUE(chunked_built.ok()) << chunked_built.error();
  sim::SimSystem chunked = std::move(chunked_built).value();
  const FinalState want = finish(chunked);

  // The run is ~1.2k cycles: at least two periodic snapshots landed.
  for (const char* name : {"000000.ckpt", "000001.ckpt"}) {
    auto resumed_built = sim::SimSystem::Builder().program(kSumProgram).build();
    ASSERT_TRUE(resumed_built.ok()) << resumed_built.error();
    sim::SimSystem resumed = std::move(resumed_built).value();
    ASSERT_TRUE(resumed.restore(prefix + name).ok) << name;
    expect_same(finish(resumed), want);
  }
}

// ----------------------------------------------- 3-core CORDIC farm

[[nodiscard]] machine::MachineDesc farm_desc() {
  apps::register_machine_peripherals();
  auto parsed = machine::MachineDesc::from_file(
      std::string(MBCOSIM_EXAMPLES_DIR) + "/machines/cordic_farm.json");
  EXPECT_TRUE(parsed.ok()) << parsed.error();
  return parsed.value();
}

struct FarmEnd {
  core::CoSimStats stats;
  u64 link_words = 0;
  std::size_t stop_core = 0;
  std::vector<Word> results;
  std::vector<std::string> traces;
};

/// Run `system` to the halt with one JSONL sink per core attached first,
/// and collect everything the checkpoint promise covers.
[[nodiscard]] FarmEnd finish_farm(sim::SimSystem& system) {
  std::vector<std::unique_ptr<std::ostringstream>> streams;
  for (std::size_t i = 0; i < system.core_count(); ++i) {
    streams.push_back(std::make_unique<std::ostringstream>());
    system.trace_bus(i).add_sink(
        std::make_unique<obs::JsonlSink>(*streams.back()));
  }
  EXPECT_EQ(system.run(), core::StopReason::kHalted);
  FarmEnd end;
  end.stats = system.stats();
  end.link_words = system.machine_engine()->link_words();
  end.stop_core = system.stop_core();
  for (u32 i = 0; i < 8; ++i) {
    end.results.push_back(system.word_on(2, "results", i));
  }
  for (const auto& stream : streams) end.traces.push_back(stream->str());
  return end;
}

void expect_same_farm(const FarmEnd& got, const FarmEnd& want,
                      unsigned workers) {
  EXPECT_EQ(got.stats.cycles, want.stats.cycles) << workers << " workers";
  EXPECT_EQ(got.stats.instructions, want.stats.instructions)
      << workers << " workers";
  EXPECT_EQ(got.stats.fsl_stall_cycles, want.stats.fsl_stall_cycles)
      << workers << " workers";
  EXPECT_EQ(got.link_words, want.link_words) << workers << " workers";
  EXPECT_EQ(got.stop_core, want.stop_core) << workers << " workers";
  EXPECT_EQ(got.results, want.results) << workers << " workers";
  ASSERT_EQ(got.traces.size(), want.traces.size());
  for (std::size_t i = 0; i < got.traces.size(); ++i) {
    EXPECT_EQ(got.traces[i], want.traces[i])
        << workers << " workers, core " << i << " trace diverged";
  }
}

TEST(CkptSystem, FarmRestoreIsByteIdenticalAtAnyWorkerCount) {
  const machine::MachineDesc desc = farm_desc();
  const Cycle quantum = desc.quantum;

  // Baseline: run the whole farm to a quantum boundary, snapshot, then
  // finish with traces on. The traces cover the post-snapshot suffix —
  // exactly what a restored run replays.
  auto base_built = sim::SimSystem::Builder().machine(desc).build();
  ASSERT_TRUE(base_built.ok()) << base_built.error();
  sim::SimSystem base = std::move(base_built).value();
  ASSERT_EQ(base.run(2 * quantum), core::StopReason::kCycleLimit);
  const std::vector<unsigned char> image = base.snapshot();
  const FarmEnd want = finish_farm(base);
  ASSERT_GT(want.link_words, 0u);

  for (const unsigned workers : {1u, 2u, 8u}) {
    auto built =
        sim::SimSystem::Builder().machine(desc).workers(workers).build();
    ASSERT_TRUE(built.ok()) << built.error();
    sim::SimSystem resumed = std::move(built).value();
    ASSERT_TRUE(resumed.restore_image(image).ok) << workers << " workers";
    expect_same_farm(finish_farm(resumed), want, workers);
  }
}

TEST(CkptSystem, MidQuantumDebuggerStopRoundTrips) {
  const machine::MachineDesc desc = farm_desc();

  auto a_built = sim::SimSystem::Builder().machine(desc).build();
  ASSERT_TRUE(a_built.ok()) << a_built.error();
  sim::SimSystem a = std::move(a_built).value();
  core::ManyCoreEngine* engine = a.machine_engine();
  ASSERT_NE(engine, nullptr);

  // Single-step into the middle of the first quantum — a stop point no
  // run() boundary can produce — and snapshot there.
  for (int i = 0; i < 5; ++i) {
    const iss::StepResult step = engine->debug_step(0);
    ASSERT_NE(step.event, iss::Event::kIllegal);
  }
  ASSERT_LT(a.stats().cycles, desc.quantum);
  const std::vector<unsigned char> image = a.snapshot();
  const FarmEnd want = finish_farm(a);

  auto b_built = sim::SimSystem::Builder().machine(desc).build();
  ASSERT_TRUE(b_built.ok()) << b_built.error();
  sim::SimSystem b = std::move(b_built).value();
  ASSERT_TRUE(b.restore_image(image).ok);
  expect_same_farm(finish_farm(b), want, 1);
}

TEST(CkptSystem, FarmImageRejectsATruncatedOrEditedFile) {
  const machine::MachineDesc desc = farm_desc();
  auto built = sim::SimSystem::Builder().machine(desc).build();
  ASSERT_TRUE(built.ok()) << built.error();
  sim::SimSystem system = std::move(built).value();
  ASSERT_EQ(system.run(64), core::StopReason::kCycleLimit);
  std::vector<unsigned char> image = system.snapshot();

  std::vector<unsigned char> truncated(image.begin(),
                                       image.end() - (image.size() / 2));
  expect_code(system.restore_image(truncated).message, 3);

  std::vector<unsigned char> corrupt = image;
  corrupt[corrupt.size() / 2] ^= 0x40;
  expect_code(system.restore_image(corrupt).message, 4);

  // The undamaged image still restores after the failed attempts.
  EXPECT_TRUE(system.restore_image(image).ok);
}

}  // namespace
}  // namespace mbcosim
