// Encoder/decoder round-trip tests across the full instruction set.
#include <gtest/gtest.h>

#include <cctype>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "isa/isa.hpp"

namespace mbcosim::isa {
namespace {

Instruction make(Op op) {
  Instruction in;
  in.op = op;
  return in;
}

/// Instructions covering every operand shape for round-trip testing.
std::vector<Instruction> representative_instructions() {
  std::vector<Instruction> all;
  auto add = [&all](Instruction in) { all.push_back(in); };

  for (Op op : {Op::kAdd, Op::kRsub, Op::kAddc, Op::kRsubc, Op::kAddk,
                Op::kRsubk, Op::kMul, Op::kOr, Op::kAnd, Op::kXor, Op::kAndn,
                Op::kLbu, Op::kLhu, Op::kLw, Op::kSb, Op::kSh, Op::kSw}) {
    Instruction reg = make(op);
    reg.rd = 3;
    reg.ra = 4;
    reg.rb = 5;
    add(reg);
    Instruction imm = make(op);
    imm.rd = 31;
    imm.ra = 1;
    imm.imm = -1234;
    imm.imm_form = true;
    add(imm);
  }
  for (Op op : {Op::kCmp, Op::kCmpu, Op::kIdiv, Op::kIdivu}) {
    Instruction in = make(op);
    in.rd = 7;
    in.ra = 8;
    in.rb = 9;
    add(in);
  }
  for (Op op : {Op::kBsll, Op::kBsra, Op::kBsrl}) {
    Instruction reg = make(op);
    reg.rd = 2;
    reg.ra = 3;
    reg.rb = 4;
    add(reg);
    Instruction imm = make(op);
    imm.rd = 2;
    imm.ra = 3;
    imm.imm = 17;
    imm.imm_form = true;
    add(imm);
  }
  for (Op op : {Op::kSra, Op::kSrc, Op::kSrl, Op::kSext8, Op::kSext16}) {
    Instruction in = make(op);
    in.rd = 10;
    in.ra = 11;
    add(in);
  }
  {
    Instruction in = make(Op::kImm);
    in.imm = -32768;
    in.imm_form = true;
    add(in);
  }
  {
    Instruction mfs = make(Op::kMfs);
    mfs.rd = 12;
    mfs.imm = 1;
    add(mfs);
    Instruction mts = make(Op::kMts);
    mts.ra = 13;
    mts.imm = 1;
    add(mts);
  }
  // Every unconditional branch variant.
  for (int absolute = 0; absolute <= 1; ++absolute) {
    for (int link = 0; link <= 1; ++link) {
      for (int delay = 0; delay <= 1; ++delay) {
        for (int immf = 0; immf <= 1; ++immf) {
          Instruction br = make(Op::kBr);
          br.absolute = absolute != 0;
          br.link = link != 0;
          br.delay_slot = delay != 0;
          br.imm_form = immf != 0;
          if (br.link) br.rd = 15;
          if (br.imm_form) {
            br.imm = 0x100;
          } else {
            br.rb = 6;
          }
          all.push_back(br);
        }
      }
    }
  }
  // Every conditional branch variant.
  for (unsigned cond = 0; cond < 6; ++cond) {
    for (int delay = 0; delay <= 1; ++delay) {
      for (int immf = 0; immf <= 1; ++immf) {
        Instruction bcc = make(Op::kBcc);
        bcc.cond = static_cast<Cond>(cond);
        bcc.delay_slot = delay != 0;
        bcc.imm_form = immf != 0;
        bcc.ra = 20;
        if (bcc.imm_form) {
          bcc.imm = -64;
        } else {
          bcc.rb = 21;
        }
        all.push_back(bcc);
      }
    }
  }
  {
    Instruction rtsd = make(Op::kRtsd);
    rtsd.ra = 15;
    rtsd.imm = 8;
    rtsd.imm_form = true;
    rtsd.delay_slot = true;
    add(rtsd);
  }
  // Every FSL variant on several channels.
  for (Op op : {Op::kGet, Op::kPut}) {
    for (int nb = 0; nb <= 1; ++nb) {
      for (int ctrl = 0; ctrl <= 1; ++ctrl) {
        for (u8 channel : {u8{0}, u8{3}, u8{7}}) {
          Instruction fsl = make(op);
          fsl.fsl_nonblocking = nb != 0;
          fsl.fsl_control = ctrl != 0;
          fsl.fsl_id = channel;
          fsl.imm_form = true;
          if (op == Op::kGet) {
            fsl.rd = 9;
          } else {
            fsl.ra = 9;
          }
          all.push_back(fsl);
        }
      }
    }
  }
  return all;
}

class RoundTrip : public ::testing::TestWithParam<Instruction> {};

TEST_P(RoundTrip, EncodeDecodeIdentity) {
  const Instruction original = GetParam();
  const Word word = encode(original);
  const Instruction decoded = decode(word);
  EXPECT_EQ(decoded, original) << "word=0x" << std::hex << word << "\n  "
                               << disassemble(original) << "\n  "
                               << disassemble(decoded);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, RoundTrip, ::testing::ValuesIn(representative_instructions()),
    [](const ::testing::TestParamInfo<Instruction>& info) {
      std::string name = mnemonic(info.param) + "_" +
                         std::to_string(info.index);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Encode, RejectsOutOfRangeImmediate) {
  Instruction in;
  in.op = Op::kAdd;
  in.imm_form = true;
  in.imm = 40000;
  EXPECT_THROW(encode(in), SimError);
}

TEST(Encode, RejectsOutOfRangeShiftAmount) {
  Instruction in;
  in.op = Op::kBsll;
  in.imm_form = true;
  in.imm = 32;
  EXPECT_THROW(encode(in), SimError);
}

TEST(Encode, RejectsBadFslChannel) {
  Instruction in;
  in.op = Op::kGet;
  in.imm_form = true;
  in.fsl_id = 8;
  EXPECT_THROW(encode(in), SimError);
}

TEST(Encode, RejectsIllegalOp) {
  EXPECT_THROW(encode(Instruction{}), SimError);
}

TEST(Encode, RejectsCmpImmediateForm) {
  Instruction in;
  in.op = Op::kCmp;
  in.imm_form = true;
  EXPECT_THROW(encode(in), SimError);
}

TEST(Decode, UndecodableWordsYieldIllegal) {
  // Opcode 0x3F is unassigned.
  EXPECT_EQ(decode(0xFC000000u).op, Op::kIllegal);
  // RSUBK with a junk function field.
  EXPECT_EQ(decode(0x14000777u).op, Op::kIllegal);
}

TEST(Decode, RandomWordsNeverCrash) {
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const Word word = rng.next_u32();
    const Instruction in = decode(word);
    if (in.op != Op::kIllegal) {
      // Whatever decodes must re-encode to a decodable word.
      const Instruction again = decode(encode(in));
      EXPECT_EQ(again, in);
    }
  }
}

}  // namespace
}  // namespace mbcosim::isa
