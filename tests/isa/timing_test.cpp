// Tests for the pipeline timing model (the numbers behind the paper's
// "high-level cycle-accurate" claim: 3-cycle multiply, LMB load latency,
// branch penalties with and without delay slots).
#include <gtest/gtest.h>

#include "isa/isa.hpp"

namespace mbcosim::isa {
namespace {

Instruction make(Op op) {
  Instruction in;
  in.op = op;
  return in;
}

TEST(Timing, SingleCycleAlu) {
  for (Op op : {Op::kAdd, Op::kRsub, Op::kAddk, Op::kOr, Op::kAnd, Op::kXor,
                Op::kAndn, Op::kSra, Op::kSrc, Op::kSrl, Op::kSext8,
                Op::kSext16, Op::kImm, Op::kCmp, Op::kCmpu, Op::kMfs,
                Op::kMts, Op::kBsll, Op::kBsra, Op::kBsrl}) {
    EXPECT_EQ(base_latency(make(op), false), 1u)
        << mnemonic(make(op));
  }
}

TEST(Timing, MultiplyTakesThreeCycles) {
  // Section I: "the multiplication instruction requires three clock
  // cycles to complete".
  EXPECT_EQ(base_latency(make(Op::kMul), false), 3u);
}

TEST(Timing, DividerTakes34Cycles) {
  EXPECT_EQ(base_latency(make(Op::kIdiv), false), 34u);
  EXPECT_EQ(base_latency(make(Op::kIdivu), false), 34u);
}

TEST(Timing, LmbAccesssTakeTwoCycles) {
  for (Op op : {Op::kLbu, Op::kLhu, Op::kLw, Op::kSb, Op::kSh, Op::kSw}) {
    EXPECT_EQ(base_latency(make(op), false), 2u);
  }
}

TEST(Timing, BranchPenalties) {
  Instruction br = make(Op::kBr);
  EXPECT_EQ(base_latency(br, true), 3u);
  br.delay_slot = true;
  EXPECT_EQ(base_latency(br, true), 2u);

  Instruction bcc = make(Op::kBcc);
  EXPECT_EQ(base_latency(bcc, false), 1u);  // not taken
  EXPECT_EQ(base_latency(bcc, true), 3u);
  bcc.delay_slot = true;
  EXPECT_EQ(base_latency(bcc, true), 2u);
}

TEST(Timing, ReturnTakesTwoCycles) {
  EXPECT_EQ(base_latency(make(Op::kRtsd), true), 2u);
}

TEST(Timing, FslAccessBaseCost) {
  EXPECT_EQ(base_latency(make(Op::kGet), false), 2u);
  EXPECT_EQ(base_latency(make(Op::kPut), false), 2u);
}

}  // namespace
}  // namespace mbcosim::isa
