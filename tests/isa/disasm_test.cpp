// Disassembler formatting tests, including the round trip through the
// assembler (disassembled text must re-assemble to the same word).
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "isa/isa.hpp"

namespace mbcosim::isa {
namespace {

TEST(Disasm, TypeAFormat) {
  Instruction in;
  in.op = Op::kAdd;
  in.rd = 3;
  in.ra = 4;
  in.rb = 5;
  EXPECT_EQ(disassemble(in), "add r3, r4, r5");
}

TEST(Disasm, TypeBFormat) {
  Instruction in;
  in.op = Op::kAddk;
  in.imm_form = true;
  in.rd = 3;
  in.ra = 4;
  in.imm = -100;
  EXPECT_EQ(disassemble(in), "addik r3, r4, -100");
}

TEST(Disasm, BranchSpellings) {
  Instruction br;
  br.op = Op::kBr;
  br.imm_form = true;
  br.imm = 16;
  EXPECT_EQ(disassemble(br), "bri 16");
  br.delay_slot = true;
  EXPECT_EQ(disassemble(br), "brid 16");
  br.link = true;
  br.rd = 15;
  EXPECT_EQ(disassemble(br), "brlid r15, 16");
}

TEST(Disasm, ConditionalBranch) {
  Instruction bcc;
  bcc.op = Op::kBcc;
  bcc.cond = Cond::kNe;
  bcc.imm_form = true;
  bcc.ra = 5;
  bcc.imm = -8;
  EXPECT_EQ(disassemble(bcc), "bnei r5, -8");
  bcc.delay_slot = true;
  EXPECT_EQ(disassemble(bcc), "bneid r5, -8");
}

TEST(Disasm, FslVariants) {
  Instruction get;
  get.op = Op::kGet;
  get.rd = 3;
  get.fsl_id = 2;
  get.imm_form = true;
  EXPECT_EQ(disassemble(get), "get r3, rfsl2");
  get.fsl_nonblocking = true;
  EXPECT_EQ(disassemble(get), "nget r3, rfsl2");
  get.fsl_control = true;
  EXPECT_EQ(disassemble(get), "ncget r3, rfsl2");

  Instruction put;
  put.op = Op::kPut;
  put.ra = 7;
  put.fsl_id = 1;
  put.imm_form = true;
  put.fsl_control = true;
  EXPECT_EQ(disassemble(put), "cput r7, rfsl1");
}

TEST(Disasm, SpecialRegisters) {
  Instruction mfs;
  mfs.op = Op::kMfs;
  mfs.rd = 4;
  mfs.imm = 1;
  EXPECT_EQ(disassemble(mfs), "mfs r4, rmsr");
  Instruction mts;
  mts.op = Op::kMts;
  mts.ra = 4;
  mts.imm = 1;
  EXPECT_EQ(disassemble(mts), "mts rmsr, r4");
}

TEST(Disasm, IllegalWord) {
  EXPECT_EQ(disassemble(Word{0xFC000000u}), "<illegal>");
}

TEST(Disasm, ControlFlowPredicate) {
  Instruction br;
  br.op = Op::kBr;
  EXPECT_TRUE(is_control_flow(br));
  Instruction add;
  add.op = Op::kAdd;
  EXPECT_FALSE(is_control_flow(add));
  Instruction rtsd;
  rtsd.op = Op::kRtsd;
  EXPECT_TRUE(is_control_flow(rtsd));
}

/// Disassembler output must re-assemble to the identical encoding for
/// non-label-relative instructions.
class DisasmRoundTrip : public ::testing::TestWithParam<Word> {};

TEST_P(DisasmRoundTrip, ReassemblesToSameWord) {
  const Word word = GetParam();
  const std::string text = disassemble(word);
  const auto program = assembler::assemble(text);
  ASSERT_TRUE(program.ok()) << text << ": " << program.error();
  ASSERT_EQ(program.value().words.size(), 1u);
  EXPECT_EQ(program.value().words[0], word) << text;
}

INSTANTIATE_TEST_SUITE_P(
    Samples, DisasmRoundTrip,
    ::testing::Values(encode([] {
                        Instruction i;
                        i.op = Op::kAdd;
                        i.rd = 1;
                        i.ra = 2;
                        i.rb = 3;
                        return i;
                      }()),
                      encode([] {
                        Instruction i;
                        i.op = Op::kMul;
                        i.imm_form = true;
                        i.rd = 4;
                        i.ra = 5;
                        i.imm = 77;
                        return i;
                      }()),
                      encode([] {
                        Instruction i;
                        i.op = Op::kSra;
                        i.rd = 6;
                        i.ra = 7;
                        return i;
                      }()),
                      encode([] {
                        Instruction i;
                        i.op = Op::kGet;
                        i.imm_form = true;
                        i.rd = 8;
                        i.fsl_id = 5;
                        i.fsl_nonblocking = true;
                        return i;
                      }()),
                      encode([] {
                        Instruction i;
                        i.op = Op::kRtsd;
                        i.imm_form = true;
                        i.delay_slot = true;
                        i.ra = 15;
                        i.imm = 8;
                        return i;
                      }())));

}  // namespace
}  // namespace mbcosim::isa
