// Resource-estimation tests (paper Section III-C / Table I structure).
#include "estimate/estimator.hpp"

#include <gtest/gtest.h>

#include "apps/cordic/cordic_hw.hpp"
#include "apps/matmul/matmul_hw.hpp"
#include "asm/assembler.hpp"
#include "estimate/datasheet.hpp"

namespace mbcosim::estimate {
namespace {

TEST(Datasheet, CpuOptionsAddUp) {
  isa::CpuConfig base;
  base.has_multiplier = false;
  base.has_barrel_shifter = false;
  base.has_divider = false;
  const ResourceVec plain = cpu_resources(base, 0);
  base.has_multiplier = true;
  const ResourceVec with_mul = cpu_resources(base, 0);
  EXPECT_EQ(with_mul.mult18s, 3u);  // Table I's baseline "3 multipliers"
  EXPECT_GT(with_mul.slices, plain.slices);
  base.has_barrel_shifter = true;
  base.has_divider = true;
  const ResourceVec full = cpu_resources(base, 2);
  EXPECT_EQ(full.slices, plain.slices + kCpuMultiplier.slices +
                             kCpuBarrelShifter.slices + kCpuDivider.slices +
                             2 * kFslLink.slices);
}

TEST(Estimator, PureSoftwareSystemHasOnlyCpuAndProgram) {
  const auto program = assembler::assemble_or_throw(
      "start: nop\nhalt\ndata: .space 64\n");
  SystemDescription system;
  system.program = &program;
  const ResourceReport report = estimate_system(system);
  EXPECT_EQ(report.parts.size(), 2u);
  EXPECT_EQ(report.estimated.brams, 1u);  // program fits one BRAM
  EXPECT_EQ(report.estimated.slices, report.implemented.slices);
}

TEST(Estimator, CordicSlicesGrowLinearlyWithP) {
  std::vector<u32> slices;
  for (unsigned p : {2u, 4u, 6u, 8u}) {
    const auto pipeline = apps::cordic::build_cordic_pipeline(p);
    SystemDescription system;
    system.fsl_links_used = 2;
    system.peripheral = pipeline.model.get();
    slices.push_back(estimate_system(system).estimated.slices);
  }
  const u32 delta1 = slices[1] - slices[0];
  const u32 delta2 = slices[2] - slices[1];
  const u32 delta3 = slices[3] - slices[2];
  EXPECT_EQ(delta1, delta2);  // constant per-PE increment
  EXPECT_EQ(delta2, delta3);
  EXPECT_GT(delta1, 0u);
}

TEST(Estimator, CordicUsesNoExtraMultipliers) {
  // Table I: the CORDIC designs report 3 multipliers for every P — all
  // from the processor's multiply unit, none from the PEs.
  const auto pipeline = apps::cordic::build_cordic_pipeline(8);
  SystemDescription system;
  system.cpu.has_multiplier = true;
  system.fsl_links_used = 2;
  system.peripheral = pipeline.model.get();
  EXPECT_EQ(estimate_system(system).estimated.mult18s, 3u);
}

TEST(Estimator, MatmulMultiplierCountsMatchTable1) {
  // Table I: 5 multipliers for 2x2 blocks, 7 for 4x4 (3 from the CPU).
  for (const auto& [block, expected] : {std::pair{2u, 5u}, {4u, 7u}}) {
    const auto peripheral = apps::matmul::build_matmul_peripheral(block);
    SystemDescription system;
    system.cpu.has_multiplier = true;
    system.fsl_links_used = 2;
    system.peripheral = peripheral.model.get();
    EXPECT_EQ(estimate_system(system).estimated.mult18s, expected)
        << "block size " << block;
  }
}

TEST(Estimator, ImplementedNeverExceedsEstimatedSlices) {
  for (unsigned p : {2u, 4u, 8u}) {
    const auto pipeline = apps::cordic::build_cordic_pipeline(p);
    SystemDescription system;
    system.fsl_links_used = 2;
    system.peripheral = pipeline.model.get();
    const ResourceReport report = estimate_system(system);
    EXPECT_LE(report.implemented.slices, report.estimated.slices);
    EXPECT_EQ(report.implemented.brams, report.estimated.brams);
    EXPECT_EQ(report.implemented.mult18s, report.estimated.mult18s);
  }
}

TEST(Estimator, MatmulTrimsMoreThanCordic) {
  // The paper's matmul designs lose ~16% of estimated slices after
  // implementation while the CORDIC pipelines lose ~1%: mux/control
  // heavy logic trims, carry chains do not.
  const auto cordic = apps::cordic::build_cordic_pipeline(4);
  const auto matmul = apps::matmul::build_matmul_peripheral(4);
  const ResourceVec cordic_est = cordic.model->resources();
  const ResourceVec cordic_impl =
      implemented_peripheral_resources(*cordic.model);
  const ResourceVec matmul_est = matmul.model->resources();
  const ResourceVec matmul_impl =
      implemented_peripheral_resources(*matmul.model);
  const double cordic_trim =
      1.0 - double(cordic_impl.slices) / double(cordic_est.slices);
  const double matmul_trim =
      1.0 - double(matmul_impl.slices) / double(matmul_est.slices);
  EXPECT_GT(matmul_trim, cordic_trim);
}

TEST(Estimator, ProgramBramSizing) {
  // 600 words = 2400 bytes -> 2 BRAMs at 2 KiB per block.
  std::string source;
  for (int i = 0; i < 600; ++i) source += ".word 0\n";
  const auto program = assembler::assemble_or_throw(source);
  SystemDescription system;
  system.program = &program;
  EXPECT_EQ(estimate_system(system).estimated.brams, 2u);
}

TEST(Estimator, ReportFormatting) {
  const auto pipeline = apps::cordic::build_cordic_pipeline(2);
  SystemDescription system;
  system.fsl_links_used = 2;
  system.peripheral = pipeline.model.get();
  const std::string text = estimate_system(system).to_string();
  EXPECT_NE(text.find("estimated:"), std::string::npos);
  EXPECT_NE(text.find("implemented:"), std::string::npos);
  EXPECT_NE(text.find("cordic_div_p2"), std::string::npos);
}

}  // namespace
}  // namespace mbcosim::estimate
