// Golden-trace regression test: the JSONL event log of a small CORDIC
// co-simulation, byte for byte against a checked-in reference. The log
// records only simulated time (never host time), so any diff means the
// simulator's observable behaviour changed — instruction sequencing,
// cycle charging, FIFO handshakes or the event encoding itself. When a
// change is intentional, regenerate the reference with:
//
//   MBCOSIM_REGEN_GOLDEN=1 ./tests/mbcosim_tests --gtest_filter='GoldenTrace.*'
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "apps/cordic/cordic_app.hpp"
#include "obs/jsonl_sink.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::obs {
namespace {

namespace cordic = mbcosim::apps::cordic;

std::string golden_path() {
  return std::string(MBCOSIM_TEST_DATA_DIR) + "/cordic_trace_golden.jsonl";
}

/// One fixed, tiny co-simulated workload: CORDIC division, one item,
/// four iterations, one hardware PE.
std::string run_traced_cordic() {
  cordic::CordicRunConfig config;
  config.num_pes = 1;
  config.iterations = 4;
  config.items = 1;
  config.set_size = 1;
  const auto [x, y] = cordic::make_cordic_dataset(config.items, 42);
  auto built = cordic::make_cordic_system(config, x, y);
  EXPECT_TRUE(built.ok()) << built.error();
  sim::SimSystem system = std::move(built).value();

  std::ostringstream trace;
  system.trace_bus().add_sink(std::make_unique<JsonlSink>(trace));
  EXPECT_EQ(system.run(), core::StopReason::kHalted);
  return trace.str();
}

TEST(GoldenTrace, CordicRunMatchesCheckedInReference) {
  const std::string trace = run_traced_cordic();
  ASSERT_FALSE(trace.empty());

  if (std::getenv("MBCOSIM_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << trace;
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " (regenerate with MBCOSIM_REGEN_GOLDEN=1)";
  std::stringstream golden;
  golden << in.rdbuf();

  // Compare line by line so a mismatch reports where, not just that.
  std::istringstream got_stream(trace);
  std::istringstream want_stream(golden.str());
  std::string got;
  std::string want;
  std::size_t line = 0;
  while (std::getline(want_stream, want)) {
    ++line;
    ASSERT_TRUE(std::getline(got_stream, got))
        << "trace ends early at line " << line;
    ASSERT_EQ(got, want) << "first divergence at line " << line;
  }
  EXPECT_FALSE(std::getline(got_stream, got))
      << "trace has extra lines after line " << line;
}

TEST(GoldenTrace, RerunsAreByteIdentical) {
  EXPECT_EQ(run_traced_cordic(), run_traced_cordic());
}

}  // namespace
}  // namespace mbcosim::obs
