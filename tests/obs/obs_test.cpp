// Observability layer: TraceBus plumbing, JSONL/VCD sink output, the
// metrics registry's aggregation, and the end-to-end wiring through the
// instrumented producers (Processor, FslChannel, OpbBus, SimSystem).
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bus/opb_bus.hpp"
#include "fsl/fsl_channel.hpp"
#include "iss/test_helpers.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_bus.hpp"
#include "obs/vcd_sink.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::obs {
namespace {

/// A sink that just remembers every event it saw.
struct RecordingSink : TraceSink {
  std::vector<TraceEvent> events;
  int flushes = 0;
  void on_event(const TraceEvent& event) override { events.push_back(event); }
  void flush() override { ++flushes; }
};

TraceEvent instr_event(EventKind kind, Cycle cycle, Addr pc, Cycle cycles) {
  TraceEvent event;
  event.kind = kind;
  event.cycle = cycle;
  event.pc = pc;
  event.cycles = cycles;
  return event;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// TraceBus

TEST(TraceBus, DisabledUntilASinkIsAttached) {
  TraceBus bus;
  EXPECT_FALSE(bus.enabled());
  bus.add_sink(std::make_unique<RecordingSink>());
  EXPECT_TRUE(bus.enabled());
}

TEST(TraceBus, RejectsNullSink) {
  TraceBus bus;
  EXPECT_THROW(bus.add_sink(nullptr), SimError);
}

TEST(TraceBus, FansEventsOutToEverySink) {
  TraceBus bus;
  auto& a = static_cast<RecordingSink&>(
      bus.add_sink(std::make_unique<RecordingSink>()));
  auto& b = static_cast<RecordingSink&>(
      bus.add_sink(std::make_unique<RecordingSink>()));
  bus.emit(instr_event(EventKind::kInstrRetire, 3, 0x10, 1));
  ASSERT_EQ(a.events.size(), 1u);
  ASSERT_EQ(b.events.size(), 1u);
  EXPECT_EQ(a.events[0].pc, 0x10u);
  bus.flush();
  EXPECT_EQ(a.flushes, 1);
  EXPECT_EQ(b.flushes, 1);
}

TEST(TraceBus, TimeCursorIsSharedState) {
  TraceBus bus;
  EXPECT_EQ(bus.time(), 0u);
  bus.set_time(41);
  EXPECT_EQ(bus.time(), 41u);
}

// ---------------------------------------------------------------------------
// JsonlSink

TEST(JsonlSink, WritesOneJsonObjectPerLine) {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.on_event(instr_event(EventKind::kInstrRetire, 1, 0x20, 1));
  sink.on_event(instr_event(EventKind::kInstrHalt, 4, 0x24, 3));
  sink.flush();
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(sink.events_written(), 2u);
  EXPECT_NE(lines[0].find("\"kind\":\"retire\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"t\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"pc\":\"0x00000020\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"halt\""), std::string::npos);
  // Every line is brace-delimited (greppable, `jq`-able).
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(JsonlSink, InjectedDisassemblerAnnotatesInstructions) {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.set_disassembler([](Addr, Word) { return std::string("add r3, r4, r5"); });
  sink.on_event(instr_event(EventKind::kInstrRetire, 1, 0, 1));
  EXPECT_NE(out.str().find("\"insn\":\"add r3, r4, r5\""), std::string::npos);
}

TEST(JsonlSink, EscapesQuotesAndBackslashes) {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.set_disassembler([](Addr, Word) { return std::string("a\"b\\c"); });
  sink.on_event(instr_event(EventKind::kInstrRetire, 1, 0, 1));
  EXPECT_NE(out.str().find("a\\\"b\\\\c"), std::string::npos);
}

TEST(JsonlSink, FslEventsCarryChannelAndOccupancy) {
  std::ostringstream out;
  JsonlSink sink(out);
  TraceEvent event;
  event.kind = EventKind::kFslPush;
  event.cycle = 7;
  event.channel = "to_hw0";
  event.data = 0xAB;
  event.occupancy = 2;
  event.depth = 16;
  sink.on_event(event);
  const std::string line = out.str();
  EXPECT_NE(line.find("\"kind\":\"fsl_push\""), std::string::npos);
  EXPECT_NE(line.find("\"channel\":\"to_hw0\""), std::string::npos);
  EXPECT_NE(line.find("\"occupancy\":2"), std::string::npos);
}

TEST(JsonlSink, ReportsUnopenablePath) {
  JsonlSink sink("/nonexistent-dir-zz/trace.jsonl");
  EXPECT_FALSE(sink.ok());
}

// ---------------------------------------------------------------------------
// VcdSink

TEST(VcdSink, WritesAWellFormedHeaderAndChanges) {
  std::ostringstream out;
  VcdSink sink(out);
  sink.on_event(instr_event(EventKind::kInstrRetire, 0, 0x0, 1));
  sink.on_event(instr_event(EventKind::kInstrRetire, 1, 0x4, 1));
  sink.on_event(instr_event(EventKind::kInstrHalt, 2, 0x8, 3));
  sink.flush();
  const std::string vcd = out.str();
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 32"), std::string::npos);
  EXPECT_NE(vcd.find("cpu.pc"), std::string::npos);
  EXPECT_NE(vcd.find("cpu.halted"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#2"), std::string::npos);
}

TEST(VcdSink, SortsOutOfOrderTimestamps) {
  // Hardware-side events of a step are stamped with hardware time that
  // trails the processor's post-step time; the sink must still produce
  // a monotonic VCD.
  std::ostringstream out;
  VcdSink sink(out);
  sink.on_event(instr_event(EventKind::kInstrRetire, 5, 0x4, 1));
  TraceEvent push;
  push.kind = EventKind::kFslPush;
  push.cycle = 2;  // earlier than the already-recorded retire
  push.channel = "to_hw0";
  push.occupancy = 1;
  push.depth = 16;
  sink.on_event(push);
  sink.flush();
  const std::string vcd = out.str();
  const auto at2 = vcd.find("#2");
  const auto at5 = vcd.find("#5");
  ASSERT_NE(at2, std::string::npos);
  ASSERT_NE(at5, std::string::npos);
  EXPECT_LT(at2, at5);
}

TEST(VcdSink, ReportsUnopenablePath) {
  VcdSink sink("/nonexistent-dir-zz/run.vcd");
  EXPECT_FALSE(sink.ok());
}

// ---------------------------------------------------------------------------
// Histogram + MetricsRegistry

TEST(Histogram, Log2Buckets) {
  Histogram h;
  for (u64 v : {0u, 1u, 2u, 3u, 4u, 7u, 8u}) h.record(v);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 25u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 8u);
  ASSERT_EQ(h.buckets().size(), 5u);  // widths 0..4
  EXPECT_EQ(h.buckets()[0], 1u);      // 0
  EXPECT_EQ(h.buckets()[1], 1u);      // 1
  EXPECT_EQ(h.buckets()[2], 2u);      // 2, 3
  EXPECT_EQ(h.buckets()[3], 2u);      // 4, 7
  EXPECT_EQ(h.buckets()[4], 1u);      // 8
}

TEST(MetricsRegistry, CountsInstructionEvents) {
  MetricsRegistry registry;
  registry.on_event(instr_event(EventKind::kInstrRetire, 1, 0, 1));
  registry.on_event(instr_event(EventKind::kInstrRetire, 2, 4, 1));
  registry.on_event(instr_event(EventKind::kInstrStall, 3, 8, 1));
  registry.on_event(instr_event(EventKind::kInstrHalt, 4, 8, 3));
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("cpu.retired"), 2u);
  EXPECT_EQ(snapshot.counter("cpu.stall_cycles"), 1u);
  EXPECT_EQ(snapshot.counter("cpu.halts"), 1u);
  EXPECT_EQ(snapshot.counter("cpu.illegal"), 0u);
}

TEST(MetricsRegistry, StallRunsAreHistogrammed) {
  MetricsRegistry registry;
  // Two runs: 3 consecutive stalls closed by a retire, then 1 stall
  // still in flight at snapshot time.
  for (int i = 0; i < 3; ++i) {
    registry.on_event(instr_event(EventKind::kInstrStall, i, 0, 1));
  }
  registry.on_event(instr_event(EventKind::kInstrRetire, 3, 0, 2));
  registry.on_event(instr_event(EventKind::kInstrStall, 5, 4, 1));
  const MetricsSnapshot snapshot = registry.snapshot();
  const auto it = snapshot.histograms.find("cpu.stall_run");
  ASSERT_NE(it, snapshot.histograms.end());
  EXPECT_EQ(it->second.count(), 2u);
  EXPECT_EQ(it->second.max(), 3u);
  EXPECT_EQ(it->second.min(), 1u);
  // The snapshot must not have consumed the in-flight run.
  const MetricsSnapshot second = registry.snapshot();
  const auto again = second.histograms.find("cpu.stall_run");
  ASSERT_NE(again, second.histograms.end());
  EXPECT_EQ(again->second.count(), 2u);
}

TEST(MetricsRegistry, FslAndEngineEvents) {
  MetricsRegistry registry;
  TraceEvent push;
  push.kind = EventKind::kFslPush;
  push.channel = "to_hw0";
  push.occupancy = 3;
  push.depth = 16;
  registry.on_event(push);
  push.kind = EventKind::kFslRefused;
  registry.on_event(push);
  TraceEvent skip;
  skip.kind = EventKind::kQuiesceSkip;
  skip.skipped = 250;
  registry.on_event(skip);
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("fsl.to_hw0.push"), 1u);
  EXPECT_EQ(snapshot.counter("fsl.to_hw0.refused"), 1u);
  EXPECT_EQ(snapshot.counter("engine.quiesce_skipped"), 250u);
  EXPECT_TRUE(snapshot.histograms.contains("fsl.to_hw0.occupancy"));
}

// ---------------------------------------------------------------------------
// Producer wiring

TEST(ObsWiring, ProcessorEmitsOneEventPerStep) {
  iss::testing::TestMachine m(
      "  add r3, r4, r5\n"
      "  mul r4, r3, r3\n"
      "  halt\n");
  TraceBus bus;
  auto& sink = static_cast<RecordingSink&>(
      bus.add_sink(std::make_unique<RecordingSink>()));
  m.cpu.set_trace_bus(&bus);
  m.run();
  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].kind, EventKind::kInstrRetire);
  EXPECT_EQ(sink.events[0].cycle, 1u);  // stamped with completion time
  EXPECT_EQ(sink.events[1].kind, EventKind::kInstrRetire);
  EXPECT_EQ(sink.events[1].cycles, 3u);
  EXPECT_EQ(sink.events[2].kind, EventKind::kInstrHalt);
}

TEST(ObsWiring, FslChannelEmitsPushPopAndRefusal) {
  fsl::FslChannel channel(2, "to_hw0");
  TraceBus bus;
  auto& sink = static_cast<RecordingSink&>(
      bus.add_sink(std::make_unique<RecordingSink>()));
  channel.set_trace_bus(&bus);
  bus.set_time(11);
  EXPECT_TRUE(channel.try_write(1, false));
  EXPECT_TRUE(channel.try_write(2, true));
  EXPECT_FALSE(channel.try_write(3, false));  // full -> refused
  ASSERT_TRUE(channel.try_read().has_value());
  ASSERT_EQ(sink.events.size(), 4u);
  EXPECT_EQ(sink.events[0].kind, EventKind::kFslPush);
  EXPECT_EQ(sink.events[0].occupancy, 1u);
  EXPECT_EQ(sink.events[0].cycle, 11u);
  EXPECT_STREQ(sink.events[0].channel, "to_hw0");
  EXPECT_EQ(sink.events[1].kind, EventKind::kFslPush);
  EXPECT_TRUE(sink.events[1].control);
  EXPECT_EQ(sink.events[2].kind, EventKind::kFslRefused);
  EXPECT_EQ(sink.events[2].occupancy, 2u);
  EXPECT_EQ(sink.events[3].kind, EventKind::kFslPop);
  EXPECT_EQ(sink.events[3].data, 1u);
  EXPECT_EQ(sink.events[3].occupancy, 1u);
}

TEST(ObsWiring, OpbBusEmitsReadsAndWrites) {
  struct Scratch : bus::OpbPeripheral {
    Word value = 0;
    Word read(Addr) override { return value; }
    void write(Addr, Word v) override { value = v; }
    Cycle device_wait_states() const override { return 3; }
  };
  bus::OpbBus opb;
  opb.map("scratch", 0xC000'0000, 16, std::make_unique<Scratch>());
  TraceBus bus_;
  auto& sink = static_cast<RecordingSink&>(
      bus_.add_sink(std::make_unique<RecordingSink>()));
  opb.set_trace_bus(&bus_);
  bus_.set_time(9);
  opb.write(0xC000'0004, 55);
  EXPECT_EQ(opb.read(0xC000'0004).data, 55u);
  opb.read(0xDEAD'0000);  // unmapped: no event
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].kind, EventKind::kOpbWrite);
  EXPECT_EQ(sink.events[0].addr, 0xC000'0004u);
  EXPECT_EQ(sink.events[0].wait_states, bus::OpbBus::kBusWaitStates + 3);
  EXPECT_EQ(sink.events[1].kind, EventKind::kOpbRead);
  EXPECT_EQ(sink.events[1].cycle, 9u);
}

TEST(ObsWiring, DisabledBusEmitsNothing) {
  iss::testing::TestMachine m("add r3, r4, r5\nhalt\n");
  TraceBus bus;  // no sinks: wired but disabled
  m.cpu.set_trace_bus(&bus);
  m.run();
  EXPECT_TRUE(m.cpu.halted());
  EXPECT_FALSE(bus.enabled());
}

// ---------------------------------------------------------------------------
// SimSystem integration

TEST(ObsSimSystem, MetricsBuilderExposesSnapshot) {
  auto built = sim::SimSystem::Builder()
                   .program("add r3, r4, r5\nmul r4, r3, r3\nhalt\n")
                   .metrics()
                   .build();
  ASSERT_TRUE(built.ok()) << built.error();
  sim::SimSystem system = std::move(built).value();
  EXPECT_TRUE(system.metrics_snapshot().empty());
  system.run();
  const MetricsSnapshot snapshot = system.metrics_snapshot();
  EXPECT_EQ(snapshot.counter("cpu.retired"), 2u);
  EXPECT_EQ(snapshot.counter("cpu.halts"), 1u);
  EXPECT_FALSE(snapshot.to_string().empty());
}

TEST(ObsSimSystem, WithoutMetricsSnapshotIsEmpty) {
  auto built = sim::SimSystem::Builder().program("halt\n").build();
  ASSERT_TRUE(built.ok()) << built.error();
  sim::SimSystem system = std::move(built).value();
  system.run();
  EXPECT_TRUE(system.metrics_snapshot().empty());
}

TEST(ObsSimSystem, CustomSinkSeesTheRun) {
  auto sink = std::make_unique<RecordingSink>();
  RecordingSink* raw = sink.get();
  auto built = sim::SimSystem::Builder()
                   .program("add r3, r4, r5\nhalt\n")
                   .sink(std::move(sink))
                   .build();
  ASSERT_TRUE(built.ok()) << built.error();
  sim::SimSystem system = std::move(built).value();
  system.run();
  ASSERT_EQ(raw->events.size(), 2u);
  EXPECT_EQ(raw->events.back().kind, EventKind::kInstrHalt);
  EXPECT_GE(raw->flushes, 1);  // run() flushes the bus
}

TEST(ObsSimSystem, UnopenableTracePathFailsTheBuild) {
  auto built = sim::SimSystem::Builder()
                   .program("halt\n")
                   .trace("/nonexistent-dir-zz/out.jsonl")
                   .build();
  EXPECT_FALSE(built.ok());
  EXPECT_NE(built.error().find("trace"), std::string::npos);
}

TEST(ObsSimSystem, SoftwareOnlyDeadlockIsReported) {
  auto built = sim::SimSystem::Builder()
                   .program("get r4, rfsl0\nhalt\n")
                   .deadlock_threshold(25)
                   .metrics()
                   .build();
  ASSERT_TRUE(built.ok()) << built.error();
  sim::SimSystem system = std::move(built).value();
  EXPECT_EQ(system.run(), core::StopReason::kDeadlock);
  const MetricsSnapshot snapshot = system.metrics_snapshot();
  EXPECT_EQ(snapshot.counter("engine.deadlocks"), 1u);
  EXPECT_EQ(snapshot.counter("cpu.stall_cycles"), 25u);
}

}  // namespace
}  // namespace mbcosim::obs
