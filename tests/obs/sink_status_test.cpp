// Trace-sink I/O hardening: a sink whose stream fails mid-run latches
// one structured Status failure, stops writing, and surfaces the error
// through TraceBus::status() / SimSystem::sink_status() instead of
// silently truncating the trace.
#include <sstream>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "obs/event.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/trace_bus.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::obs {
namespace {

/// A streambuf that accepts `limit` characters and then reports write
/// failure (the in-memory analog of a disk filling up).
class ChokingBuf : public std::streambuf {
 public:
  explicit ChokingBuf(std::size_t limit) : limit_(limit) {}

 protected:
  int overflow(int ch) override {
    if (written_ >= limit_) return traits_type::eof();
    ++written_;
    return ch;
  }
  std::streamsize xsputn(const char* data, std::streamsize count) override {
    (void)data;
    const auto room =
        static_cast<std::streamsize>(limit_ - std::min(limit_, written_));
    const std::streamsize accepted = std::min(room, count);
    written_ += static_cast<std::size_t>(accepted);
    return accepted;
  }

 private:
  std::size_t limit_;
  std::size_t written_ = 0;
};

TraceEvent retire_event(Cycle cycle) {
  TraceEvent event;
  event.kind = EventKind::kInstrRetire;
  event.cycle = cycle;
  event.pc = 0x10;
  event.raw = 0x12345678;
  event.cycles = 1;
  return event;
}

TEST(SinkStatus, HealthyStreamReportsOk) {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.on_event(retire_event(1));
  sink.flush();
  EXPECT_TRUE(sink.status().ok);
  EXPECT_EQ(sink.events_written(), 1u);
}

TEST(SinkStatus, FailingStreamLatchesOneStructuredError) {
  ChokingBuf buf(10);  // fails partway through the first event line
  std::ostream out(&buf);
  JsonlSink sink(out);

  sink.on_event(retire_event(1));
  ASSERT_FALSE(sink.status().ok);
  const std::string first_message = sink.status().message;
  EXPECT_NE(first_message.find("write failed"), std::string::npos);

  // Further events are dropped without disturbing the latched status.
  sink.on_event(retire_event(2));
  sink.on_event(retire_event(3));
  EXPECT_EQ(sink.status().message, first_message);
  EXPECT_EQ(sink.events_written(), 0u);  // the failed write never counted
}

TEST(SinkStatus, TraceBusSurfacesTheFirstFailingSink) {
  auto choked_buf = std::make_unique<ChokingBuf>(5);
  auto choked_stream = std::make_unique<std::ostream>(choked_buf.get());

  TraceBus bus;
  auto healthy = std::make_unique<std::ostringstream>();
  bus.add_sink(std::make_unique<JsonlSink>(*healthy));
  bus.add_sink(std::make_unique<JsonlSink>(*choked_stream));
  ASSERT_TRUE(bus.status().ok);

  bus.emit(retire_event(1));
  const Status status = bus.status();
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.message.find("write failed"), std::string::npos);
}

TEST(SinkStatus, SimSystemExposesSinkHealth) {
  auto system_built = sim::SimSystem::Builder()
                          .program("addik r3, r3, 1\nhalt\n")
                          .metrics()  // a healthy sink
                          .build();
  ASSERT_TRUE(system_built.ok()) << system_built.error();
  sim::SimSystem system = std::move(system_built).value();
  EXPECT_EQ(system.run(), core::StopReason::kHalted);
  EXPECT_TRUE(system.sink_status().ok);
}

TEST(SinkStatus, FaultEventsRenderInTheJsonl) {
  std::ostringstream out;
  JsonlSink sink(out);
  TraceEvent inject;
  inject.kind = EventKind::kFaultInject;
  inject.cycle = 42;
  inject.label = "bitflip";
  inject.detail = "flipped mem[0x20]";
  sink.on_event(inject);
  sink.flush();
  const std::string line = out.str();
  EXPECT_NE(line.find("\"fault_inject\""), std::string::npos);
  EXPECT_NE(line.find("bitflip"), std::string::npos);
  EXPECT_NE(line.find("flipped mem[0x20]"), std::string::npos);
}

}  // namespace
}  // namespace mbcosim::obs
