// Full RSP protocol sessions over the in-memory loopback transport —
// deterministic by construction: no sockets, no threads, no sleeps. The
// scripted client sends bytes, RspServer::pump() processes exactly what
// is queued, and every reply is asserted byte-for-byte.
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "apps/cordic/cordic_app.hpp"
#include "iss/debugger.hpp"
#include "iss/test_helpers.hpp"
#include "rsp/cosim_target.hpp"
#include "rsp/server.hpp"
#include "rsp/transport.hpp"
#include "rsp_test_client.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::rsp {
namespace {

using iss::testing::TestMachine;
using testclient::RspTestClient;

/// One loopback session over a bare-ISS TestMachine.
struct LoopbackSession {
  explicit LoopbackSession(TestMachine& machine,
                           RspServer::Options options = RspServer::Options{})
      : debugger(machine.cpu), target(debugger) {
    auto [server_side, client_side] = make_loopback();
    server_transport = std::move(server_side);
    client_transport = std::move(client_side);
    server.emplace(*server_transport, target, options);
    client.emplace(*client_transport, [this] { server->pump(); });
  }

  iss::Debugger debugger;
  CoSimTarget target;
  std::unique_ptr<Transport> server_transport;
  std::unique_ptr<Transport> client_transport;
  std::optional<RspServer> server;
  std::optional<RspTestClient> client;
};

TEST(RspSession, HandshakeQueries) {
  TestMachine m("  halt\n");
  LoopbackSession s(m);
  const auto supported = s.client->transact("qSupported:multiprocess+");
  ASSERT_TRUE(supported.has_value());
  EXPECT_NE(supported->find("PacketSize="), std::string::npos);
  EXPECT_NE(supported->find("vContSupported+"), std::string::npos);
  EXPECT_EQ(s.client->transact("?"), "S05");
  EXPECT_EQ(s.client->transact("vCont?"), "vCont;c;C;s;S");
  EXPECT_EQ(s.client->transact("qAttached"), "1");
  EXPECT_EQ(s.client->transact("Hg0"), "OK");
  // Unsupported packets get the standard empty reply.
  EXPECT_EQ(s.client->transact("qXfer:features:read::0,fff"), "");
  EXPECT_FALSE(s.server->ended());
}

TEST(RspSession, BreakpointContinueRegistersAndDetach) {
  TestMachine m(
      "  li r3, 1\n"  // words at 0, 4
      "  li r4, 2\n"  // words at 8, 12
      "  halt\n");
  LoopbackSession s(m);

  EXPECT_EQ(s.client->transact("Z0,8,4"), "OK");
  EXPECT_EQ(s.client->transact("c"), "S05");
  EXPECT_EQ(m.cpu.pc(), 8u);
  EXPECT_EQ(m.cpu.reg(3), 1u);

  // p: r3 and the PC pseudo-register, little-endian 8 hex digits.
  EXPECT_EQ(s.client->transact("p3"), hex_word(1));
  EXPECT_EQ(s.client->transact("p20"), hex_word(8));  // reg 0x20 = PC
  EXPECT_EQ(s.client->transact("p22"), "E01");        // out of the file

  // g: all 34 registers concatenated.
  const auto regs = s.client->transact("g");
  ASSERT_TRUE(regs.has_value());
  ASSERT_EQ(regs->size(), kNumRegs * 8);
  EXPECT_EQ(regs->substr(3 * 8, 8), hex_word(1));            // r3
  EXPECT_EQ(regs->substr(kRegPc * 8, 8), hex_word(8));       // PC
  // G: write the same file back, bumping r5.
  std::string file = *regs;
  file.replace(5 * 8, 8, hex_word(0x1234));
  EXPECT_EQ(s.client->transact("G" + file), "OK");
  EXPECT_EQ(m.cpu.reg(5), 0x1234u);

  // P: single register write.
  EXPECT_EQ(s.client->transact("P6=" + hex_word(0xcafe)), "OK");
  EXPECT_EQ(m.cpu.reg(6), 0xcafeu);

  // m/M: read the first program word, write a data word.
  const auto word0 = s.client->transact("m0,4");
  ASSERT_TRUE(word0.has_value());
  EXPECT_EQ(word0->size(), 8u);
  EXPECT_EQ(s.client->transact("M100,4:deadbeef"), "OK");
  EXPECT_EQ(s.client->transact("m100,4"), "deadbeef");
  EXPECT_EQ(s.client->transact("mfffffff0,4"), "E01");  // out of range

  // Clear the breakpoint and run to the halt.
  EXPECT_EQ(s.client->transact("z0,8,4"), "OK");
  EXPECT_EQ(s.client->transact("c"), "W00");
  EXPECT_EQ(m.cpu.reg(4), 2u);
  EXPECT_EQ(s.client->transact("?"), "W00");

  EXPECT_EQ(s.client->transact("D"), "OK");
  ASSERT_TRUE(s.server->ended());
  EXPECT_EQ(s.server->end(), SessionEnd::kDetached);
}

TEST(RspSession, StepAndMonitorCommands) {
  TestMachine m(
      "  li r3, 7\n"
      "  halt\n");
  LoopbackSession s(m);

  EXPECT_EQ(s.client->transact("s"), "S05");
  EXPECT_GT(m.cpu.cycle(), 0u);
  const auto cycles_text = s.client->monitor("cycles");
  ASSERT_TRUE(cycles_text.has_value());
  // monitor replies are newline-terminated text.
  EXPECT_EQ(*cycles_text, std::to_string(m.cpu.cycle()) + "\n");

  const auto disasm = s.client->monitor("disasm");
  ASSERT_TRUE(disasm.has_value());
  EXPECT_EQ(disasm->find("error"), std::string::npos);

  const auto unknown = s.client->monitor("frobnicate");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_NE(unknown->find("error: unknown command 'frobnicate'"),
            std::string::npos);

  // vCont;s is the modern spelling of `s`.
  EXPECT_EQ(s.client->transact("vCont;s:1"), "S05");
}

TEST(RspSession, InterruptStopsContinue) {
  TestMachine m("loop: bri loop2\nloop2: bri loop\n");
  RspServer::Options options;
  options.resume_quantum = 500;  // poll for the interrupt every 500 cycles
  LoopbackSession s(m, options);

  // Queue the continue AND the raw 0x03 before the server runs: the
  // resume loop finds the interrupt at its first quantum boundary.
  s.client->send_raw(frame_packet("c"));
  s.client->send_raw("\x03");
  s.server->pump();

  auto ack = s.client->next_event();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->kind, DecoderEvent::Kind::kAck);
  auto stop = s.client->next_event();
  ASSERT_TRUE(stop.has_value());
  ASSERT_EQ(stop->kind, DecoderEvent::Kind::kPacket);
  EXPECT_EQ(stop->payload, "S02");
  EXPECT_FALSE(m.cpu.halted());
  EXPECT_GE(m.cpu.cycle(), 500u);
}

TEST(RspSession, KillEndsSessionWithoutReply) {
  TestMachine m("  halt\n");
  LoopbackSession s(m);
  s.client->send_packet("k");
  ASSERT_TRUE(s.server->ended());
  EXPECT_EQ(s.server->end(), SessionEnd::kKilled);
  // Only the ack arrives; `k` itself has no reply.
  auto ack = s.client->next_event();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->kind, DecoderEvent::Kind::kAck);
  EXPECT_FALSE(s.client->next_event().has_value());
}

TEST(RspSession, NakTriggersRetransmit) {
  TestMachine m("  halt\n");
  LoopbackSession s(m);
  s.client->send_raw(frame_packet("?"));
  s.server->pump();
  auto ack = s.client->next_event();
  ASSERT_TRUE(ack.has_value());
  auto first = s.client->next_event();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->payload, "S05");
  // NAK instead of ack: the server must resend the identical frame.
  s.client->send_raw("-");
  s.server->pump();
  auto second = s.client->next_event();
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(second->kind, DecoderEvent::Kind::kPacket);
  EXPECT_EQ(second->payload, "S05");
}

TEST(RspSession, BadChecksumGetsNak) {
  TestMachine m("  halt\n");
  LoopbackSession s(m);
  s.client->send_raw("$?#00");  // wrong checksum
  s.server->pump();
  auto nak = s.client->next_event();
  ASSERT_TRUE(nak.has_value());
  EXPECT_EQ(nak->kind, DecoderEvent::Kind::kNak);
  // Session still healthy afterwards.
  EXPECT_EQ(s.client->transact("?"), "S05");
}

TEST(RspSession, DisconnectEndsSession) {
  TestMachine m("  halt\n");
  LoopbackSession s(m);
  EXPECT_EQ(s.client->transact("?"), "S05");
  s.client_transport.reset();  // client hangs up
  EXPECT_FALSE(s.server->pump());
  ASSERT_TRUE(s.server->ended());
  EXPECT_EQ(s.server->end(), SessionEnd::kDisconnected);
}

/// The full co-simulated system behind the protocol: set a breakpoint in
/// the CORDIC hardware-driver program, continue to it, then run to the
/// halt — and the engine statistics must be identical to an undebugged
/// free run of an identically-built system, cycle for cycle.
TEST(RspSession, CoSimBreakpointKeepsStatsParity) {
  apps::cordic::CordicRunConfig config;
  config.num_pes = 2;
  config.iterations = 24;
  config.items = 6;
  config.set_size = 2;
  const auto [x, y] = apps::cordic::make_cordic_dataset(config.items, 0x5E55);

  auto debugged_built = apps::cordic::make_cordic_system(config, x, y);
  ASSERT_TRUE(debugged_built.ok()) << debugged_built.error();
  sim::SimSystem debugged = std::move(debugged_built).value();
  auto free_built = apps::cordic::make_cordic_system(config, x, y);
  ASSERT_TRUE(free_built.ok()) << free_built.error();
  sim::SimSystem free_run = std::move(free_built).value();

  iss::Debugger debugger(debugged.cpu());
  CoSimTarget target(debugger, debugged.engine());
  auto [server_side, client_side] = make_loopback();
  RspServer server(*server_side, target);
  RspTestClient client(*client_side, [&server] { server.pump(); });

  const Addr bp = debugged.symbol("store_loop");
  char addr_hex[16];
  std::snprintf(addr_hex, sizeof addr_hex, "%x", static_cast<unsigned>(bp));
  EXPECT_EQ(client.transact(std::string("Z0,") + addr_hex + ",4"), "OK");
  EXPECT_EQ(client.transact("c"), "S05");
  EXPECT_EQ(debugged.cpu().pc(), bp);

  // Mid-run: some cycles burned, program not done.
  const auto mid_cycles = client.monitor("cycles");
  ASSERT_TRUE(mid_cycles.has_value());
  const Cycle stop_cycle = debugged.cpu().cycle();
  EXPECT_GT(stop_cycle, 0u);
  EXPECT_EQ(*mid_cycles, std::to_string(stop_cycle) + "\n");

  // Register write + read-back through the wire, restoring the original
  // value afterwards so the poke cannot perturb the program (r18 is live
  // in the driver loop).
  const Word saved = debugged.cpu().reg(18);
  EXPECT_EQ(client.transact("P12=" + hex_word(0x5a5a)), "OK");
  EXPECT_EQ(client.transact("p12"), hex_word(0x5a5a));
  EXPECT_EQ(client.transact("P12=" + hex_word(saved)), "OK");
  EXPECT_EQ(debugged.cpu().reg(18), saved);

  EXPECT_EQ(client.transact(std::string("z0,") + addr_hex + ",4"), "OK");
  EXPECT_EQ(client.transact("c"), "W00");
  EXPECT_GT(debugged.cpu().cycle(), stop_cycle);

  ASSERT_EQ(free_run.run(), core::StopReason::kHalted);

  const core::CoSimStats a = debugged.stats();
  const core::CoSimStats b = free_run.stats();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.fsl_stall_cycles, b.fsl_stall_cycles);
  EXPECT_EQ(a.hw_cycles_stepped + a.hw_cycles_skipped,
            b.hw_cycles_stepped + b.hw_cycles_skipped);
  EXPECT_EQ(a.bridge.words_to_hw, b.bridge.words_to_hw);
  EXPECT_EQ(a.bridge.words_from_hw, b.bridge.words_from_hw);
}

}  // namespace
}  // namespace mbcosim::rsp
