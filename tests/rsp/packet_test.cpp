// Unit and property tests for the RSP packet codec: framing, checksums,
// hex payloads, binary escaping and run-length encoding all round-trip
// byte-for-byte, and the incremental decoder recovers packets from
// arbitrarily fragmented byte streams.
#include "rsp/packet.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"

namespace mbcosim::rsp {
namespace {

TEST(RspChecksum, KnownValues) {
  EXPECT_EQ(checksum(""), 0u);
  EXPECT_EQ(checksum("OK"), static_cast<u8>('O' + 'K'));
  // Sum wraps mod 256.
  EXPECT_EQ(checksum(std::string(256, 'a')), static_cast<u8>(256 * 'a'));
}

TEST(RspFrame, KnownPackets) {
  EXPECT_EQ(frame_packet(""), "$#00");
  EXPECT_EQ(frame_packet("OK"), "$OK#9a");
  EXPECT_EQ(frame_packet("S05"), "$S05#b8");
}

TEST(RspHex, RoundTrip) {
  const std::string bytes{"\x00\x7f\xff\x10", 4};
  EXPECT_EQ(to_hex(bytes), "007fff10");
  const Expected<std::string> back = from_hex("007fff10");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), bytes);
}

TEST(RspHex, RejectsOddLengthAndBadDigits) {
  EXPECT_FALSE(from_hex("abc").ok());
  EXPECT_FALSE(from_hex("zz").ok());
  EXPECT_TRUE(from_hex("").ok());
}

TEST(RspHexWord, LittleEndianWire) {
  // Register values travel least-significant byte first.
  EXPECT_EQ(hex_word(0x12345678u), "78563412");
  const Expected<Word> back = parse_hex_word("78563412");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), 0x12345678u);
  EXPECT_FALSE(parse_hex_word("7856341").ok());    // 7 digits
  EXPECT_FALSE(parse_hex_word("785634122").ok());  // 9 digits
  EXPECT_FALSE(parse_hex_word("7856341g").ok());
}

TEST(RspHexNumber, BigEndianAddresses) {
  const Expected<u64> value = parse_hex_number("1f0");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 0x1f0u);
  EXPECT_FALSE(parse_hex_number("").ok());
  EXPECT_FALSE(parse_hex_number("12x").ok());  // trailing garbage
}

TEST(RspBinaryEscape, EscapesExactlyTheReservedBytes) {
  const std::string reserved = "#$*}";
  const std::string escaped = escape_binary(reserved);
  EXPECT_EQ(escaped.size(), 8u);
  for (std::size_t i = 0; i + 1 < escaped.size(); i += 2) {
    EXPECT_EQ(escaped[i], '}');
    EXPECT_EQ(static_cast<char>(escaped[i + 1] ^ 0x20), reserved[i / 2]);
  }
  EXPECT_EQ(escape_binary("plain"), "plain");
}

TEST(RspBinaryEscape, EveryByteValueRoundTrips) {
  std::string all;
  for (int b = 0; b < 256; ++b) all.push_back(static_cast<char>(b));
  const std::string escaped = escape_binary(all);
  // The escaped form never contains a bare reserved byte (except the
  // leading `}` of an escape pair).
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '}') {
      ++i;  // the escaped byte that follows may be anything
      continue;
    }
    EXPECT_NE(escaped[i], '#');
    EXPECT_NE(escaped[i], '$');
    EXPECT_NE(escaped[i], '*');
  }
  const Expected<std::string> back = unescape_binary(escaped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), all);
}

TEST(RspBinaryEscape, DanglingEscapeFails) {
  EXPECT_FALSE(unescape_binary("abc}").ok());
}

TEST(RspRle, KnownExpansions) {
  // 'c*n' expands to 1 + (n - 29) copies: "0* " is '0' plus 3 more.
  const Expected<std::string> four = rle_decode("0* ");
  ASSERT_TRUE(four.ok());
  EXPECT_EQ(four.value(), "0000");
  EXPECT_FALSE(rle_decode("*!").ok());   // no preceding byte
  EXPECT_FALSE(rle_decode("a*").ok());   // dangling
  EXPECT_FALSE(rle_decode("a*\x1d").ok());  // count 0 < 3
}

TEST(RspRle, ShortRunsStayLiteral) {
  EXPECT_EQ(rle_encode("aa"), "aa");
  EXPECT_EQ(rle_encode("aaa"), "aaa");
  EXPECT_NE(rle_encode("aaaa").find('*'), std::string::npos);
}

TEST(RspRle, NeverEmitsForbiddenCounts) {
  for (std::size_t run = 1; run <= 300; ++run) {
    const std::string encoded = rle_encode(std::string(run, 'x'));
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      if (encoded[i] != '*') continue;
      ASSERT_LT(i + 1, encoded.size());
      const char count = encoded[i + 1];
      EXPECT_NE(count, '#') << "run " << run;
      EXPECT_NE(count, '$') << "run " << run;
      EXPECT_NE(count, '+') << "run " << run;
      EXPECT_NE(count, '-') << "run " << run;
      EXPECT_GE(static_cast<u8>(count) - 29, 3) << "run " << run;
      ++i;
    }
    const Expected<std::string> back = rle_decode(encoded);
    ASSERT_TRUE(back.ok()) << "run " << run;
    EXPECT_EQ(back.value(), std::string(run, 'x')) << "run " << run;
  }
}

TEST(RspRle, FuzzRoundTripOverEscapedPayloads) {
  // The wire pipeline escapes binary data *before* RLE, so rle_encode
  // never sees a raw '*'; the fuzz inputs go through the same pipeline.
  Rng rng(0xC0DEC);
  for (int trial = 0; trial < 500; ++trial) {
    std::string raw;
    const std::size_t length = rng.next_below(200);
    for (std::size_t i = 0; i < length; ++i) {
      // Skew towards runs so the encoder actually compresses.
      if (!raw.empty() && rng.next_below(4) != 0) {
        raw.push_back(raw.back());
      } else {
        raw.push_back(static_cast<char>(rng.next_below(256)));
      }
    }
    const std::string escaped = escape_binary(raw);
    const std::string encoded = rle_encode(escaped);
    const Expected<std::string> decoded = rle_decode(encoded);
    ASSERT_TRUE(decoded.ok()) << "trial " << trial;
    ASSERT_EQ(decoded.value(), escaped) << "trial " << trial;
    const Expected<std::string> unescaped = unescape_binary(decoded.value());
    ASSERT_TRUE(unescaped.ok()) << "trial " << trial;
    ASSERT_EQ(unescaped.value(), raw) << "trial " << trial;
  }
}

TEST(RspDecoder, ByteAtATime) {
  PacketDecoder decoder;
  const std::string wire = frame_packet("qSupported");
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(wire.substr(i, 1));
    EXPECT_FALSE(decoder.next().has_value());
  }
  decoder.feed(wire.substr(wire.size() - 1));
  const auto event = decoder.next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, DecoderEvent::Kind::kPacket);
  EXPECT_EQ(event->payload, "qSupported");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(RspDecoder, AckNakInterruptInterleaved) {
  PacketDecoder decoder;
  std::string wire = "+";
  wire += frame_packet("?");
  wire += "-\x03";
  wire += frame_packet("c");
  decoder.feed(wire);
  auto e1 = decoder.next();
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->kind, DecoderEvent::Kind::kAck);
  auto e2 = decoder.next();
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->kind, DecoderEvent::Kind::kPacket);
  EXPECT_EQ(e2->payload, "?");
  auto e3 = decoder.next();
  ASSERT_TRUE(e3.has_value());
  EXPECT_EQ(e3->kind, DecoderEvent::Kind::kNak);
  auto e4 = decoder.next();
  ASSERT_TRUE(e4.has_value());
  EXPECT_EQ(e4->kind, DecoderEvent::Kind::kInterrupt);
  auto e5 = decoder.next();
  ASSERT_TRUE(e5.has_value());
  EXPECT_EQ(e5->payload, "c");
}

TEST(RspDecoder, BadChecksumIsReported) {
  PacketDecoder decoder;
  decoder.feed("$OK#00");  // real checksum is 9a
  const auto event = decoder.next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, DecoderEvent::Kind::kBadPacket);
  // The stream recovers: the next packet decodes fine.
  decoder.feed(frame_packet("OK"));
  const auto good = decoder.next();
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->kind, DecoderEvent::Kind::kPacket);
  EXPECT_EQ(good->payload, "OK");
}

TEST(RspDecoder, SkipsLineNoise) {
  PacketDecoder decoder;
  decoder.feed("garbage\r\n" + frame_packet("m0,4") + "noise");
  const auto event = decoder.next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, DecoderEvent::Kind::kPacket);
  EXPECT_EQ(event->payload, "m0,4");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(RspDecoder, RleExpandedOnTheWayIn) {
  PacketDecoder decoder;
  decoder.feed(frame_packet("0* "));  // '0' + 3 repeats
  const auto event = decoder.next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, DecoderEvent::Kind::kPacket);
  EXPECT_EQ(event->payload, "0000");
}

TEST(RspDecoder, FragmentedAcrossFeeds) {
  PacketDecoder decoder;
  decoder.feed("$m12");
  EXPECT_FALSE(decoder.next().has_value());
  decoder.feed("34,8#");
  EXPECT_FALSE(decoder.next().has_value());
  const std::string frame = frame_packet("m1234,8");
  decoder.feed(frame.substr(frame.size() - 2));
  const auto event = decoder.next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->payload, "m1234,8");
}

}  // namespace
}  // namespace mbcosim::rsp
