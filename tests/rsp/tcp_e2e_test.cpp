// End-to-end remote-debug test over a real TCP socket: a scripted RSP
// client attaches to SimSystem::serve_gdb, sets a breakpoint in the
// CORDIC hardware-driver program, continues into it with the hardware
// model in lock-step, reads and writes a register, and resumes to the
// halt — and the engine statistics match an undebugged free run bit for
// bit. Runs under the `rsp_tcp` ctest label (excluded from tier-1's
// socket-free default set).
#include <cstdio>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "apps/cordic/cordic_app.hpp"
#include "rsp/packet.hpp"
#include "rsp/transport.hpp"
#include "rsp_test_client.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::rsp {
namespace {

using testclient::RspTestClient;

constexpr int kClientTimeoutMs = 30'000;

TEST(RspTcpE2E, AttachBreakResumeWithStatsParity) {
  apps::cordic::CordicRunConfig config;
  config.num_pes = 2;
  config.iterations = 24;
  config.items = 6;
  config.set_size = 2;
  const auto [x, y] = apps::cordic::make_cordic_dataset(config.items, 0x7C9);

  auto debugged_built = apps::cordic::make_cordic_system(config, x, y);
  ASSERT_TRUE(debugged_built.ok()) << debugged_built.error();
  sim::SimSystem debugged = std::move(debugged_built).value();
  auto free_built = apps::cordic::make_cordic_system(config, x, y);
  ASSERT_TRUE(free_built.ok()) << free_built.error();
  sim::SimSystem free_run = std::move(free_built).value();

  const Addr bp = debugged.symbol("store_loop");

  // Serve on an ephemeral port; on_listen resolves once the socket is
  // bound and listening, so the client thread cannot race the accept.
  std::promise<u16> port_promise;
  std::future<u16> port_future = port_promise.get_future();
  std::thread server_thread([&] {
    auto end = debugged.serve_gdb(
        0, [&](u16 port) { port_promise.set_value(port); });
    ASSERT_TRUE(end.ok()) << end.error();
    EXPECT_EQ(end.value(), SessionEnd::kDetached);
  });

  const u16 port = port_future.get();
  std::unique_ptr<Transport> wire = tcp_connect("127.0.0.1", port);
  ASSERT_NE(wire, nullptr);
  RspTestClient client(*wire, /*pump=*/{}, kClientTimeoutMs);

  // Attach and handshake.
  const auto supported = client.transact("qSupported:swbreak+");
  ASSERT_TRUE(supported.has_value());
  EXPECT_NE(supported->find("PacketSize="), std::string::npos);
  EXPECT_EQ(client.transact("?"), "S05");

  // Breakpoint in the driver's store loop; continue runs the full co-sim.
  char addr_hex[16];
  std::snprintf(addr_hex, sizeof addr_hex, "%x", static_cast<unsigned>(bp));
  EXPECT_EQ(client.transact(std::string("Z0,") + addr_hex + ",4"), "OK");
  EXPECT_EQ(client.transact("c"), "S05");

  // Stopped exactly at the breakpoint, mid-run.
  EXPECT_EQ(client.transact("p20"), hex_word(bp));  // reg 0x20 = PC
  const auto mid_cycles = client.monitor("cycles");
  ASSERT_TRUE(mid_cycles.has_value());
  EXPECT_NE(*mid_cycles, "0\n");

  // Register read + write + restore over the wire (r18 is live).
  const auto r18_hex = client.transact("p12");
  ASSERT_TRUE(r18_hex.has_value());
  EXPECT_EQ(client.transact("P12=" + hex_word(0xa5a5)), "OK");
  EXPECT_EQ(client.transact("p12"), hex_word(0xa5a5));
  EXPECT_EQ(client.transact("P12=" + *r18_hex), "OK");

  // The co-sim `stats` monitor verb is served through qRcmd.
  const auto stats_text = client.monitor("stats");
  ASSERT_TRUE(stats_text.has_value());
  EXPECT_NE(stats_text->find("cycles "), std::string::npos);

  // Checkpoint + restore at the breakpoint stop, over the wire. The
  // restore rewinds to the state we just saved (a no-op here), so the
  // stats-parity assertion below also covers the round trip.
  const std::string ckpt_path = ::testing::TempDir() + "rsp_e2e.ckpt";
  const auto saved = client.monitor("checkpoint " + ckpt_path);
  ASSERT_TRUE(saved.has_value());
  EXPECT_NE(saved->find("saved to"), std::string::npos) << *saved;
  const auto restored = client.monitor("restore " + ckpt_path);
  ASSERT_TRUE(restored.has_value());
  EXPECT_NE(restored->find("restored from"), std::string::npos) << *restored;

  // Resume to the program end and detach.
  EXPECT_EQ(client.transact(std::string("z0,") + addr_hex + ",4"), "OK");
  EXPECT_EQ(client.transact("c"), "W00");
  EXPECT_EQ(client.transact("D"), "OK");
  server_thread.join();
  wire.reset();

  // Cycle-consistency: the debugged run's engine statistics equal a free
  // run's — the stop/resume sequence did not perturb the co-simulation.
  ASSERT_EQ(free_run.run(), core::StopReason::kHalted);
  const core::CoSimStats a = debugged.stats();
  const core::CoSimStats b = free_run.stats();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.fsl_stall_cycles, b.fsl_stall_cycles);
  EXPECT_EQ(a.hw_cycles_stepped + a.hw_cycles_skipped,
            b.hw_cycles_stepped + b.hw_cycles_skipped);
  EXPECT_EQ(a.bridge.words_to_hw, b.bridge.words_to_hw);
  EXPECT_EQ(a.bridge.words_from_hw, b.bridge.words_from_hw);
}

TEST(RspTcpE2E, SecondClientGetsStructuredBusyError) {
  auto built = sim::SimSystem::Builder()
                   .program("loop: bri loop2\nloop2: bri loop\n")
                   .build();
  ASSERT_TRUE(built.ok()) << built.error();
  sim::SimSystem system = std::move(built).value();

  std::promise<u16> port_promise;
  std::future<u16> port_future = port_promise.get_future();
  std::thread server_thread([&] {
    auto end = system.serve_gdb(
        0, [&](u16 port) { port_promise.set_value(port); });
    ASSERT_TRUE(end.ok()) << end.error();
    EXPECT_EQ(end.value(), SessionEnd::kKilled);
  });

  const u16 port = port_future.get();
  std::unique_ptr<Transport> first = tcp_connect("127.0.0.1", port);
  ASSERT_NE(first, nullptr);
  RspTestClient client(*first, /*pump=*/{}, kClientTimeoutMs);
  EXPECT_EQ(client.transact("?"), "S05");  // the session is established

  // A second debugger connects while the first holds the session: it
  // must be turned away with a framed structured error, not left
  // hanging and not given the target.
  std::unique_ptr<Transport> second = tcp_connect("127.0.0.1", port);
  ASSERT_NE(second, nullptr);
  std::string rejection;
  for (int i = 0; i < kClientTimeoutMs / 50 && !second->closed(); ++i) {
    rejection += second->recv(50);
    if (rejection.find('#') != std::string::npos) break;  // full frame
  }
  EXPECT_NE(rejection.find("$E.srv-busy"), std::string::npos) << rejection;

  // The first client is unaffected and can end the session normally.
  EXPECT_EQ(client.transact("?"), "S05");
  client.send_packet("k");
  server_thread.join();
}

TEST(RspTcpE2E, InterruptOverTcp) {
  // A program that never halts: the raw \x03 byte must break it out.
  auto built = sim::SimSystem::Builder()
                   .program("loop: bri loop2\nloop2: bri loop\n")
                   .build();
  ASSERT_TRUE(built.ok()) << built.error();
  sim::SimSystem system = std::move(built).value();

  std::promise<u16> port_promise;
  std::future<u16> port_future = port_promise.get_future();
  std::thread server_thread([&] {
    auto end = system.serve_gdb(
        0, [&](u16 port) { port_promise.set_value(port); });
    ASSERT_TRUE(end.ok()) << end.error();
    EXPECT_EQ(end.value(), SessionEnd::kKilled);
  });

  const u16 port = port_future.get();
  std::unique_ptr<Transport> wire = tcp_connect("127.0.0.1", port);
  ASSERT_NE(wire, nullptr);
  RspTestClient client(*wire, /*pump=*/{}, kClientTimeoutMs);

  EXPECT_EQ(client.transact("?"), "S05");
  client.send_raw(frame_packet("c"));
  // Wait for the ack, then interrupt the running target.
  auto ack = client.next_event();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->kind, DecoderEvent::Kind::kAck);
  client.send_raw("\x03");
  auto stop = client.next_event();
  ASSERT_TRUE(stop.has_value());
  ASSERT_EQ(stop->kind, DecoderEvent::Kind::kPacket);
  EXPECT_EQ(stop->payload, "S02");
  client.send_raw("+");

  client.send_packet("k");
  server_thread.join();
}

}  // namespace
}  // namespace mbcosim::rsp
