// Transport I/O policy: write_fully / read_retry against fake syscalls
// (EINTR storms, short writes, hard errors — no sockets involved), plus
// a loopback-pair round trip covering send/recv/closed semantics.
#include <algorithm>
#include <cerrno>
#include <string>

#include <gtest/gtest.h>

#include "rsp/transport.hpp"

namespace mbcosim::rsp {
namespace {

// -- write_fully policy -------------------------------------------------------

TEST(WriteFully, ShortWritesAreContinuedUntilComplete) {
  std::string sink;
  const auto dribble = [&sink](const char* data, std::size_t size) {
    const std::size_t n = std::min<std::size_t>(3, size);  // 3 bytes at a time
    sink.append(data, n);
    return static_cast<long>(n);
  };
  const std::string payload = "the quick brown fox";
  EXPECT_TRUE(write_fully(dribble, payload.data(), payload.size()));
  EXPECT_EQ(sink, payload);
}

TEST(WriteFully, EintrIsRetriedWithinTheBudget) {
  std::string sink;
  int interrupts = 5;
  const auto flaky = [&](const char* data, std::size_t size) -> long {
    if (interrupts > 0) {
      --interrupts;
      errno = EINTR;
      return -1;
    }
    sink.append(data, size);
    return static_cast<long>(size);
  };
  EXPECT_TRUE(write_fully(flaky, "abc", 3));
  EXPECT_EQ(sink, "abc");
}

TEST(WriteFully, EintrStormBeyondTheBudgetFails) {
  const auto wedged = [](const char*, std::size_t) -> long {
    errno = EINTR;
    return -1;
  };
  EXPECT_FALSE(write_fully(wedged, "abc", 3, /*max_retries=*/8));
}

TEST(WriteFully, ProgressResetsTheRetryBudget) {
  // Alternate one byte of progress with `budget` interruptions: fails
  // unless progress resets the stall counter.
  std::string sink;
  int since_progress = 0;
  const auto alternating = [&](const char* data, std::size_t) -> long {
    if (since_progress < 4) {
      ++since_progress;
      errno = EINTR;
      return -1;
    }
    since_progress = 0;
    sink.append(data, 1);
    return 1;
  };
  EXPECT_TRUE(write_fully(alternating, "abcdefgh", 8, /*max_retries=*/4));
  EXPECT_EQ(sink, "abcdefgh");
}

TEST(WriteFully, HardErrorFailsImmediately) {
  int calls = 0;
  const auto broken_pipe = [&calls](const char*, std::size_t) -> long {
    ++calls;
    errno = EPIPE;
    return -1;
  };
  EXPECT_FALSE(write_fully(broken_pipe, "abc", 3));
  EXPECT_EQ(calls, 1);  // no retry on a non-EINTR error
}

TEST(WriteFully, ZeroLengthWritesCountAgainstTheBudget) {
  const auto stuck = [](const char*, std::size_t) -> long { return 0; };
  EXPECT_FALSE(write_fully(stuck, "abc", 3, /*max_retries=*/8));
}

// -- read_retry policy --------------------------------------------------------

TEST(ReadRetry, EintrIsRetriedThenTheReadSucceeds) {
  int interrupts = 3;
  const auto flaky = [&](char* data, std::size_t) -> long {
    if (interrupts > 0) {
      --interrupts;
      errno = EINTR;
      return -1;
    }
    data[0] = 'x';
    return 1;
  };
  char buffer[8];
  EXPECT_EQ(read_retry(flaky, buffer, sizeof buffer), 1);
  EXPECT_EQ(buffer[0], 'x');
}

TEST(ReadRetry, BudgetExhaustionSurfacesTheError) {
  int calls = 0;
  const auto wedged = [&calls](char*, std::size_t) -> long {
    ++calls;
    errno = EINTR;
    return -1;
  };
  char buffer[8];
  EXPECT_LT(read_retry(wedged, buffer, sizeof buffer, /*max_retries=*/5), 0);
  EXPECT_EQ(calls, 6);  // first attempt + 5 retries
  EXPECT_EQ(errno, EINTR);
}

TEST(ReadRetry, EofAndHardErrorsPassStraightThrough) {
  const auto eof = [](char*, std::size_t) -> long { return 0; };
  char buffer[8];
  EXPECT_EQ(read_retry(eof, buffer, sizeof buffer), 0);

  const auto reset = [](char*, std::size_t) -> long {
    errno = ECONNRESET;
    return -1;
  };
  EXPECT_LT(read_retry(reset, buffer, sizeof buffer), 0);
  EXPECT_EQ(errno, ECONNRESET);
}

// -- loopback pair ------------------------------------------------------------

TEST(Loopback, RoundTripsBytesBothWays) {
  auto [server, client] = make_loopback();
  EXPECT_TRUE(client->send("$qSupported#37"));
  EXPECT_EQ(server->recv(0), "$qSupported#37");
  EXPECT_EQ(server->recv(0), "");  // drained

  EXPECT_TRUE(server->send("+$OK#9a"));
  EXPECT_TRUE(server->send("extra"));  // sends coalesce until recv'd
  EXPECT_EQ(client->recv(0), "+$OK#9aextra");
}

TEST(Loopback, PeerDestructionClosesTheChannel) {
  auto [server, client] = make_loopback();
  EXPECT_FALSE(server->closed());
  EXPECT_TRUE(client->send("last words"));
  client.reset();
  // Queued bytes are still readable; closed() only once drained.
  EXPECT_FALSE(server->closed());
  EXPECT_EQ(server->recv(0), "last words");
  EXPECT_TRUE(server->closed());
  EXPECT_FALSE(server->send("into the void"));
}

}  // namespace
}  // namespace mbcosim::rsp
