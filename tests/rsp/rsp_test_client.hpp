// Scripted RSP client used by the protocol tests: frames packets, waits
// for (and acks) replies, and decodes qRcmd hex. Works over both the
// deterministic loopback pair (with an explicit server-pump hook and
// zero timeouts) and a live TCP connection (server on another thread,
// real timeouts).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "rsp/packet.hpp"
#include "rsp/transport.hpp"

namespace mbcosim::rsp::testclient {

class RspTestClient {
 public:
  /// `pump` (optional) is invoked after every send so a single-threaded
  /// loopback server gets a chance to process the bytes; `timeout_ms` 0
  /// means "everything must already be available" (loopback), > 0 polls
  /// a live transport.
  explicit RspTestClient(Transport& transport,
                         std::function<void()> pump = {}, int timeout_ms = 0)
      : transport_(transport), pump_(std::move(pump)),
        timeout_ms_(timeout_ms) {}

  void send_raw(std::string_view bytes) { transport_.send(bytes); }

  /// Send one framed packet (no reply expected — e.g. `k`).
  void send_packet(std::string_view payload) {
    transport_.send(frame_packet(payload));
    if (pump_) pump_();
  }

  /// Send a packet and return the server's reply payload, consuming the
  /// ack and acking the reply. nullopt on timeout / disconnect / NAK.
  std::optional<std::string> transact(std::string_view payload) {
    transport_.send(frame_packet(payload));
    if (pump_) pump_();
    while (true) {
      std::optional<DecoderEvent> event = next_event();
      if (!event) return std::nullopt;
      if (event->kind == DecoderEvent::Kind::kAck) continue;
      if (event->kind != DecoderEvent::Kind::kPacket) return std::nullopt;
      transport_.send("+");
      if (pump_) pump_();
      return std::move(event->payload);
    }
  }

  /// gdb `monitor CMD`: hex-encode through qRcmd, hex-decode the reply.
  std::optional<std::string> monitor(std::string_view command) {
    const std::optional<std::string> reply =
        transact("qRcmd," + to_hex(command));
    if (!reply) return std::nullopt;
    if (*reply == "OK") return std::string{};
    const Expected<std::string> text = from_hex(*reply);
    if (!text) return std::nullopt;
    return text.value();
  }

  /// Next decoded event from the wire (ack, packet, ...), honouring the
  /// client timeout.
  std::optional<DecoderEvent> next_event() {
    int waited = 0;
    while (true) {
      if (std::optional<DecoderEvent> event = decoder_.next()) return event;
      const int slice = timeout_ms_ > 0 ? 20 : 0;
      const std::string bytes = transport_.recv(slice);
      if (!bytes.empty()) {
        decoder_.feed(bytes);
        continue;
      }
      if (transport_.closed()) return std::nullopt;
      if (timeout_ms_ <= 0 || waited >= timeout_ms_) return std::nullopt;
      waited += slice;
    }
  }

 private:
  Transport& transport_;
  std::function<void()> pump_;
  int timeout_ms_ = 0;
  PacketDecoder decoder_;
};

}  // namespace mbcosim::rsp::testclient
