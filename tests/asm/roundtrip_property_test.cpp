// Property: for every encodable instruction, the disassembler's text
// re-assembles to the identical machine word (toolchain closure).
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/rng.hpp"
#include "isa/isa.hpp"

namespace mbcosim::assembler {
namespace {

/// Assemble exactly one instruction and return its word.
Word assemble_one(const std::string& text) {
  auto result = assemble(text);
  EXPECT_TRUE(result.ok()) << text << "\n" << result.error();
  if (!result.ok()) return 0;
  EXPECT_EQ(result.value().words.size(), 1u) << text;
  return result.value().words.empty() ? 0 : result.value().words[0];
}

TEST(ToolchainClosure, RandomDecodableWordsRoundTrip) {
  // Fuzz: decode random words; every decodable one must survive
  // disassemble -> assemble -> encode unchanged.
  Rng rng(0xC10);
  int round_tripped = 0;
  for (int trial = 0; trial < 50000 && round_tripped < 2000; ++trial) {
    const Word word = rng.next_u32();
    const isa::Instruction in = isa::decode(word);
    if (in.op == isa::Op::kIllegal) continue;
    // Branches with symbolic targets are position-dependent; numeric
    // offsets as printed are position-independent, so all forms work.
    const std::string text = isa::disassemble(in);
    const Word canonical = isa::encode(in);
    const Word reassembled = assemble_one(text);
    ASSERT_EQ(reassembled, canonical)
        << "word=0x" << std::hex << word << " text='" << text << "'";
    ++round_tripped;
  }
  EXPECT_GE(round_tripped, 2000);
}

TEST(ToolchainClosure, ListingOfProgramsReassembles) {
  // A whole program's listing must round-trip instruction by instruction
  // (data words decode as instructions or are skipped).
  const char* kSource =
      "start:\n"
      "  li r3, 0x12345678\n"
      "  add r4, r3, r3\n"
      "  mul r5, r4, r3\n"
      "  bsrai r6, r5, 7\n"
      "  cmp r7, r6, r4\n"
      "  beqid r7, start\n"
      "  nop\n"
      "  get r8, rfsl2\n"
      "  ncput r8, rfsl3\n"
      "  cust2 r9, r8, r3\n"
      "  rtsd r15, 8\n"
      "  nop\n"
      "  halt\n";
  const Program first = assemble_or_throw(kSource);
  std::string regenerated;
  for (const Word word : first.words) {
    const isa::Instruction in = isa::decode(word);
    ASSERT_NE(in.op, isa::Op::kIllegal);
    regenerated += isa::disassemble(in) + "\n";
  }
  const Program second = assemble_or_throw(regenerated);
  EXPECT_EQ(second.words, first.words);
}

}  // namespace
}  // namespace mbcosim::assembler
