// Tests for the program-image inspection tool (mb-objdump analog) and
// the BRAM sizing rule it feeds (paper Section III-C).
#include "asm/objdump.hpp"

#include <gtest/gtest.h>

#include "asm/assembler.hpp"

namespace mbcosim::assembler {
namespace {

TEST(Objdump, CountsInstructionAndDataWords) {
  const Program p = assemble_or_throw(
      "  add r1, r2, r3\n"
      "  halt\n"
      "data: .word 0xfc000000\n");  // undecodable -> data
  const ObjdumpSummary summary = summarize(p);
  EXPECT_EQ(summary.size_words, 3u);
  EXPECT_EQ(summary.size_bytes, 12u);
  EXPECT_EQ(summary.instruction_words, 2u);
  EXPECT_EQ(summary.data_words, 1u);
}

TEST(Objdump, ListingContainsAddressesAndLabels) {
  const Program p = assemble_or_throw(
      "entry:\n"
      "  nop\n"
      "tail:\n"
      "  halt\n");
  const std::string text = listing(p);
  EXPECT_NE(text.find("entry:"), std::string::npos);
  EXPECT_NE(text.find("tail:"), std::string::npos);
  EXPECT_NE(text.find("0x00000000"), std::string::npos);
  EXPECT_NE(text.find("0x00000004"), std::string::npos);
}

TEST(Objdump, BramSizingRoundsUp) {
  Program p;
  p.words.assign(1, 0);  // 4 bytes
  EXPECT_EQ(brams_for_program(p), 1u);
  p.words.assign(512, 0);  // exactly 2048 bytes
  EXPECT_EQ(brams_for_program(p), 1u);
  p.words.assign(513, 0);  // one byte over
  EXPECT_EQ(brams_for_program(p), 2u);
}

TEST(Objdump, EmptyProgramNeedsNoBram) {
  Program p;
  EXPECT_EQ(brams_for_program(p), 0u);
}

TEST(Objdump, CustomBramCapacity) {
  Program p;
  p.words.assign(1024, 0);  // 4096 bytes
  EXPECT_EQ(brams_for_program(p, 1024), 4u);
}

}  // namespace
}  // namespace mbcosim::assembler
