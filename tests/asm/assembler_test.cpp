// Assembler tests: syntax, directives, labels, pseudo-instructions and
// error reporting.
#include "asm/assembler.hpp"

#include <gtest/gtest.h>

#include "isa/isa.hpp"

namespace mbcosim::assembler {
namespace {

Program ok(std::string_view source) {
  auto result = assemble(source);
  EXPECT_TRUE(result.ok()) << result.error();
  return std::move(result).value();
}

std::string err(std::string_view source) {
  auto result = assemble(source);
  EXPECT_FALSE(result.ok());
  return result.error();
}

TEST(Assembler, EmptyProgram) {
  const Program p = ok("");
  EXPECT_TRUE(p.words.empty());
  EXPECT_EQ(p.size_bytes(), 0u);
}

TEST(Assembler, SingleInstruction) {
  const Program p = ok("add r1, r2, r3");
  ASSERT_EQ(p.words.size(), 1u);
  EXPECT_EQ(isa::disassemble(p.words[0]), "add r1, r2, r3");
}

TEST(Assembler, CommentStyles) {
  const Program p = ok(
      "add r1, r2, r3   # hash comment\n"
      "add r1, r2, r3   ; semicolon comment\n"
      "add r1, r2, r3   // slash comment\n"
      "# full-line comment\n");
  EXPECT_EQ(p.words.size(), 3u);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  const Program p = ok(
      "start:\n"
      "  bri forward\n"
      "forward:\n"
      "  bri start\n");
  ASSERT_EQ(p.words.size(), 2u);
  EXPECT_EQ(p.symbol("start"), 0u);
  EXPECT_EQ(p.symbol("forward"), 4u);
  // bri forward at address 0 -> offset +4; bri start at 4 -> offset -4.
  const isa::Instruction first = isa::decode(p.words[0]);
  EXPECT_EQ(first.imm, 4);
  const isa::Instruction second = isa::decode(p.words[1]);
  EXPECT_EQ(second.imm, -4);
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  const Program p = ok("loop: bri loop\n");
  ASSERT_EQ(p.words.size(), 1u);
  EXPECT_EQ(isa::decode(p.words[0]).imm, 0);
}

TEST(Assembler, WordDirective) {
  const Program p = ok(".word 1, 2, 0xdeadbeef, -1");
  ASSERT_EQ(p.words.size(), 4u);
  EXPECT_EQ(p.words[0], 1u);
  EXPECT_EQ(p.words[1], 2u);
  EXPECT_EQ(p.words[2], 0xDEADBEEFu);
  EXPECT_EQ(p.words[3], 0xFFFFFFFFu);
}

TEST(Assembler, WordDirectiveWithSymbol) {
  const Program p = ok(
      "  .equ MAGIC, 0x55\n"
      "  .word MAGIC\n");
  ASSERT_EQ(p.words.size(), 1u);
  EXPECT_EQ(p.words[0], 0x55u);
}

TEST(Assembler, SpaceDirectiveZeroFills) {
  const Program p = ok(
      "data: .space 12\n"
      "end_marker: .word 7\n");
  ASSERT_EQ(p.words.size(), 4u);
  EXPECT_EQ(p.symbol("end_marker"), 12u);
  EXPECT_EQ(p.words[3], 7u);
}

TEST(Assembler, OrgSetsOrigin) {
  const Program p = ok(
      ".org 0x100\n"
      "entry: nop\n");
  EXPECT_EQ(p.origin, 0x100u);
  EXPECT_EQ(p.symbol("entry"), 0x100u);
}

TEST(Assembler, EquDefinesConstants) {
  const Program p = ok(
      ".equ SIZE, 64\n"
      "addik r3, r0, SIZE\n");
  const isa::Instruction in = isa::decode(p.words[0]);
  EXPECT_EQ(in.imm, 64);
}

TEST(Assembler, LiExpandsToImmPair) {
  const Program p = ok("li r5, 0x12345678");
  ASSERT_EQ(p.words.size(), 2u);
  const isa::Instruction prefix = isa::decode(p.words[0]);
  EXPECT_EQ(prefix.op, isa::Op::kImm);
  EXPECT_EQ(static_cast<u16>(prefix.imm), 0x1234u);
  const isa::Instruction low = isa::decode(p.words[1]);
  EXPECT_EQ(low.op, isa::Op::kAddk);
  EXPECT_EQ(static_cast<u16>(low.imm), 0x5678u);
}

TEST(Assembler, LaResolvesSymbolAddress) {
  const Program p = ok(
      "  la r4, table\n"
      "  halt\n"
      "table: .word 9\n");
  // la = 2 words, halt = 1 word -> table at byte 12.
  EXPECT_EQ(p.symbol("table"), 12u);
  const isa::Instruction low = isa::decode(p.words[1]);
  EXPECT_EQ(low.imm, 12);
}

TEST(Assembler, NopIsOrR0) {
  const Program p = ok("nop");
  const isa::Instruction in = isa::decode(p.words[0]);
  EXPECT_EQ(in.op, isa::Op::kOr);
  EXPECT_EQ(in.rd, 0);
}

TEST(Assembler, HaltIsBranchToSelf) {
  const Program p = ok("halt");
  const isa::Instruction in = isa::decode(p.words[0]);
  EXPECT_EQ(in.op, isa::Op::kBr);
  EXPECT_TRUE(in.imm_form);
  EXPECT_EQ(in.imm, 0);
}

TEST(Assembler, FslInstructions) {
  const Program p = ok(
      "get r3, rfsl0\n"
      "nget r4, rfsl1\n"
      "cput r5, rfsl7\n"
      "ncput r6, rfsl3\n");
  EXPECT_EQ(isa::disassemble(p.words[0]), "get r3, rfsl0");
  EXPECT_EQ(isa::disassemble(p.words[1]), "nget r4, rfsl1");
  EXPECT_EQ(isa::disassemble(p.words[2]), "cput r5, rfsl7");
  EXPECT_EQ(isa::disassemble(p.words[3]), "ncput r6, rfsl3");
}

TEST(Assembler, NumericBranchOffsets) {
  const Program p = ok("bri 8\nbnei r3, -4\n");
  EXPECT_EQ(isa::decode(p.words[0]).imm, 8);
  EXPECT_EQ(isa::decode(p.words[1]).imm, -4);
}

TEST(Assembler, CaseInsensitiveMnemonicsAndRegisters) {
  const Program p = ok("ADD R1, r2, R3\n");
  EXPECT_EQ(isa::disassemble(p.words[0]), "add r1, r2, r3");
}

// ---- Error paths ----------------------------------------------------------

TEST(AssemblerErrors, UnknownMnemonic) {
  EXPECT_NE(err("frobnicate r1, r2").find("unknown mnemonic"),
            std::string::npos);
}

TEST(AssemblerErrors, BadRegister) {
  EXPECT_NE(err("add r1, r2, r32").find("bad register"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedSymbol) {
  EXPECT_NE(err("bri nowhere").find("cannot resolve"), std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_NE(err("a:\na:\n").find("duplicate symbol"), std::string::npos);
}

TEST(AssemblerErrors, ImmediateTooLarge) {
  EXPECT_NE(err("addik r1, r0, 40000").find("16 bits"), std::string::npos);
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_NE(err("add r1, r2").find("expected 3 operand"), std::string::npos);
}

TEST(AssemblerErrors, ShiftAmountRange) {
  EXPECT_NE(err("bslli r1, r2, 32").find("shift amount"), std::string::npos);
}

TEST(AssemblerErrors, OrgAfterCodeRejected) {
  EXPECT_NE(err("nop\n.org 0x10\n").find(".org"), std::string::npos);
}

TEST(AssemblerErrors, ReportsLineNumbers) {
  const std::string message = err("nop\nnop\nbogus\n");
  EXPECT_NE(message.find("line 3"), std::string::npos);
}

TEST(AssemblerErrors, MultipleErrorsAllReported) {
  const std::string message = err("bogus1\nbogus2\n");
  EXPECT_NE(message.find("bogus1"), std::string::npos);
  EXPECT_NE(message.find("bogus2"), std::string::npos);
}

TEST(AssemblerErrors, ThrowingWrapper) {
  EXPECT_THROW(assemble_or_throw("bogus"), SimError);
}

TEST(Program, UndefinedSymbolThrows) {
  const Program p = ok("nop");
  EXPECT_THROW(p.symbol("missing"), SimError);
}

}  // namespace
}  // namespace mbcosim::assembler
