// VCD waveform writer and net-lookup tests.
#include "rtl/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mbcosim::rtl {
namespace {

TEST(FindNet, LooksUpByName) {
  Simulator sim;
  Net& a = sim.net("top.a", 8, 0);
  sim.net("top.b", 1, 0);
  EXPECT_EQ(sim.find_net("top.a"), &a);
  EXPECT_EQ(sim.find_net("missing"), nullptr);
}

TEST(Vcd, HeaderDeclaresAllNets) {
  Simulator sim;
  Net& clk = sim.net("clk", 1, 0);
  Net& bus = sim.net("data bus", 16, 0);
  std::ostringstream out;
  VcdWriter vcd(out, {&clk, &bus});
  const std::string text = out.str();
  EXPECT_NE(text.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 16 \" data_bus $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, EmitsOnlyChanges) {
  Simulator sim;
  Net& clk = sim.net("clk", 1, 0);
  Net& value = sim.net("value", 8, 0);
  sim.process("count", {&clk}, [&] {
    if (clk.rose()) sim.assign(value, value.read().bits + 1);
  });
  sim.start();
  std::ostringstream out;
  VcdWriter vcd(out, {&value});
  vcd.sample(0);  // initial dump
  sim.tick(clk);
  vcd.sample(1);  // value changed -> emitted
  vcd.sample(2);  // no change -> nothing
  sim.tick(clk);
  vcd.sample(3);
  const std::string text = out.str();
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("#1"), std::string::npos);
  EXPECT_EQ(text.find("#2"), std::string::npos);  // suppressed
  EXPECT_NE(text.find("#3"), std::string::npos);
  EXPECT_NE(text.find("b00000001 !"), std::string::npos);
  EXPECT_NE(text.find("b00000010 !"), std::string::npos);
  EXPECT_EQ(vcd.samples_taken(), 4u);
}

TEST(Vcd, ScalarNetsUseShortForm) {
  Simulator sim;
  Net& flag = sim.net("flag", 1, 0);
  std::ostringstream out;
  VcdWriter vcd(out, {&flag});
  vcd.sample(0);
  sim.assign_bit(flag, true);
  sim.settle();
  vcd.sample(1);
  EXPECT_NE(out.str().find("\n1!"), std::string::npos);
}

TEST(Vcd, RejectsEmptyNetList) {
  std::ostringstream out;
  EXPECT_THROW(VcdWriter(out, {}), SimError);
}

}  // namespace
}  // namespace mbcosim::rtl
