// Event-driven kernel tests: delta cycles, sensitivity, edges, stats.
#include "rtl/kernel.hpp"

#include <gtest/gtest.h>

namespace mbcosim::rtl {
namespace {

TEST(Kernel, CombinationalProcessFollowsInput) {
  Simulator sim;
  Net& a = sim.net("a", 8, 0);
  Net& b = sim.net("b", 8, 0);
  sim.process("invert", {&a}, [&] {
    sim.assign(b, LogicVector::of(8, ~a.read().bits & 0xFF));
  });
  sim.start();
  EXPECT_EQ(b.value(), 0xFFu);
  sim.assign(a, 0x55);
  sim.settle();
  EXPECT_EQ(b.value(), 0xAAu);
}

TEST(Kernel, DeltaCyclesCascadeThroughChain) {
  Simulator sim;
  Net& a = sim.net("a", 8, 0);
  Net& b = sim.net("b", 8, 0);
  Net& c = sim.net("c", 8, 0);
  sim.process("ab", {&a}, [&] { sim.assign(b, a.read().bits + 1); });
  sim.process("bc", {&b}, [&] { sim.assign(c, b.read().bits + 1); });
  sim.start();
  sim.assign(a, 10);
  sim.settle();
  EXPECT_EQ(c.value(), 12u);
  EXPECT_GT(sim.stats().delta_cycles, 1u);
}

TEST(Kernel, NoChangeNoWakeup) {
  Simulator sim;
  Net& a = sim.net("a", 1, 0);
  int activations = 0;
  sim.process("watch", {&a}, [&] { ++activations; });
  sim.start();
  const int after_start = activations;
  sim.assign_bit(a, false);  // same value: no event
  sim.settle();
  EXPECT_EQ(activations, after_start);
  sim.assign_bit(a, true);
  sim.settle();
  EXPECT_EQ(activations, after_start + 1);
}

TEST(Kernel, LastAssignmentWinsInDelta) {
  Simulator sim;
  Net& a = sim.net("a", 8, 0);
  Net& trigger = sim.net("t", 1, 0);
  sim.process("write_twice", {&trigger}, [&] {
    sim.assign(a, 1);
    sim.assign(a, 2);
  });
  sim.start();
  sim.assign_bit(trigger, true);
  sim.settle();
  EXPECT_EQ(a.value(), 2u);
}

TEST(Kernel, RisingEdgeDetection) {
  Simulator sim;
  Net& clk = sim.net("clk", 1, 0);
  int rises = 0;
  int falls = 0;
  sim.process("edges", {&clk}, [&] {
    if (clk.rose()) ++rises;
    if (clk.fell()) ++falls;
  });
  sim.start();
  sim.tick(clk);
  sim.tick(clk);
  EXPECT_EQ(rises, 2);
  EXPECT_EQ(falls, 2);
  EXPECT_EQ(sim.stats().clock_cycles, 2u);
}

TEST(Kernel, ClockedRegisterBehaviour) {
  Simulator sim;
  Net& clk = sim.net("clk", 1, 0);
  Net& d = sim.net("d", 8, 0);
  Net& q = sim.net("q", 8, 0);
  sim.process("reg", {&clk}, [&] {
    if (clk.rose()) sim.assign(q, d.read());
  });
  sim.start();
  sim.assign(d, 7);
  sim.settle();
  EXPECT_EQ(q.value(), 0u);  // not clocked yet
  sim.tick(clk);
  EXPECT_EQ(q.value(), 7u);
}

TEST(Kernel, OscillationGuard) {
  Simulator sim;
  Net& a = sim.net("a", 1, 0);
  sim.process("osc", {&a}, [&] {
    sim.assign(a, LogicVector::of(1, ~a.read().bits & 1));
  });
  sim.set_max_deltas(100);
  EXPECT_THROW(sim.start(), SimError);
}

TEST(Kernel, WidthMismatchRejected) {
  Simulator sim;
  Net& a = sim.net("a", 8, 0);
  sim.start();
  EXPECT_THROW(sim.assign(a, LogicVector::of(4, 1)), SimError);
}

TEST(Kernel, StatsAccumulate) {
  Simulator sim;
  Net& clk = sim.net("clk", 1, 0);
  Net& counter = sim.net("count", 8, 0);
  sim.process("count", {&clk}, [&] {
    if (clk.rose()) sim.assign(counter, counter.read().bits + 1);
  });
  sim.start();
  for (int i = 0; i < 10; ++i) sim.tick(clk);
  EXPECT_EQ(counter.value(), 10u);
  EXPECT_GE(sim.stats().events, 20u);  // clk edges + counter changes
  EXPECT_GE(sim.stats().process_activations, 20u);
  EXPECT_GT(sim.stats().assignments, 0u);
  EXPECT_EQ(sim.net_count(), 2u);
  EXPECT_EQ(sim.process_count(), 1u);
}

TEST(Kernel, UninitializedNetStartsUnknown) {
  Simulator sim;
  Net& a = sim.net("a", 4);
  EXPECT_FALSE(a.read().is_fully_known());
}

}  // namespace
}  // namespace mbcosim::rtl
