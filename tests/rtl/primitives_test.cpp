// Property tests: structural bit-level primitives against host arithmetic
// over random vectors.
#include "rtl/primitives.hpp"

#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace mbcosim::rtl {
namespace {

class PrimitiveProperty : public ::testing::TestWithParam<u64> {};

TEST_P(PrimitiveProperty, RippleCarryAddMatchesHost) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    const unsigned width = static_cast<unsigned>(rng.next_in(1, 32));
    const u64 a = rng.next_u64() & low_mask64(width);
    const u64 b = rng.next_u64() & low_mask64(width);
    Logic carry = Logic::k0;
    const LogicVector sum = rc_add(LogicVector::of(width, a),
                                   LogicVector::of(width, b), Logic::k0,
                                   &carry);
    const u64 expected = (a + b) & low_mask64(width);
    EXPECT_EQ(sum.value(), expected);
    EXPECT_EQ(carry == Logic::k1, ((a + b) >> width) != 0)
        << "width=" << width;
  }
}

TEST_P(PrimitiveProperty, SubtractionMatchesHost) {
  Rng rng(GetParam() ^ 0x5ABu);
  for (int trial = 0; trial < 500; ++trial) {
    const unsigned width = static_cast<unsigned>(rng.next_in(1, 32));
    const u64 a = rng.next_u64() & low_mask64(width);
    const u64 b = rng.next_u64() & low_mask64(width);
    const LogicVector diff =
        rc_sub(LogicVector::of(width, a), LogicVector::of(width, b));
    EXPECT_EQ(diff.value(), (a - b) & low_mask64(width));
  }
}

TEST_P(PrimitiveProperty, BitwiseOpsMatchHost) {
  Rng rng(GetParam() ^ 0xB17);
  for (int trial = 0; trial < 500; ++trial) {
    const unsigned width = static_cast<unsigned>(rng.next_in(1, 48));
    const u64 a = rng.next_u64() & low_mask64(width);
    const u64 b = rng.next_u64() & low_mask64(width);
    const LogicVector va = LogicVector::of(width, a);
    const LogicVector vb = LogicVector::of(width, b);
    EXPECT_EQ(and_v(va, vb).value(), a & b);
    EXPECT_EQ(or_v(va, vb).value(), a | b);
    EXPECT_EQ(xor_v(va, vb).value(), a ^ b);
    EXPECT_EQ(not_v(va).value(), ~a & low_mask64(width));
  }
}

TEST_P(PrimitiveProperty, ComparatorsMatchHost) {
  Rng rng(GetParam() ^ 0xC0);
  for (int trial = 0; trial < 500; ++trial) {
    const unsigned width = static_cast<unsigned>(rng.next_in(2, 32));
    const u64 a = rng.next_u64() & low_mask64(width);
    const u64 b = rng.next_u64() & low_mask64(width);
    const LogicVector va = LogicVector::of(width, a);
    const LogicVector vb = LogicVector::of(width, b);
    EXPECT_EQ(eq_v(va, vb) == Logic::k1, a == b);
    const i64 sa = sign_extend64(a, width);
    const i64 sb = sign_extend64(b, width);
    EXPECT_EQ(lt_signed(va, vb) == Logic::k1, sa < sb)
        << "a=" << sa << " b=" << sb << " width=" << width;
  }
}

TEST_P(PrimitiveProperty, BarrelShiftsMatchHost) {
  Rng rng(GetParam() ^ 0xBA44E1);
  for (int trial = 0; trial < 300; ++trial) {
    const u64 a = rng.next_u32();
    const unsigned amount = static_cast<unsigned>(rng.next_below(32));
    const LogicVector va = LogicVector::of(32, a);
    const LogicVector vamt = LogicVector::of(5, amount);
    EXPECT_EQ(barrel_shift_right_logic(va, vamt).value(), a >> amount);
    EXPECT_EQ(barrel_shift_left(va, vamt).value(),
              (a << amount) & 0xFFFFFFFFu);
    const i64 sa = sign_extend64(a, 32);
    EXPECT_EQ(barrel_shift_right_arith(va, vamt).value(),
              static_cast<u64>(sa >> amount) & 0xFFFFFFFFu);
  }
}

TEST_P(PrimitiveProperty, ArrayMultiplierMatchesHost) {
  Rng rng(GetParam() ^ 0x3114);
  for (int trial = 0; trial < 300; ++trial) {
    const u32 a = rng.next_u32();
    const u32 b = rng.next_u32();
    const LogicVector product = array_multiply(LogicVector::of(32, a),
                                               LogicVector::of(32, b));
    EXPECT_EQ(product.value(), static_cast<u64>(a * b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimitiveProperty,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(Primitives, XPropagatesThroughAdder) {
  LogicVector a = LogicVector::of(8, 0x0F);
  a.set(0, Logic::kX);
  const LogicVector sum = rc_add(a, LogicVector::of(8, 1));
  EXPECT_FALSE(sum.is_fully_known());
}

TEST(Primitives, MuxKnownSelect) {
  const LogicVector a = LogicVector::of(8, 1);
  const LogicVector b = LogicVector::of(8, 2);
  EXPECT_EQ(mux2(Logic::k0, a, b).value(), 1u);
  EXPECT_EQ(mux2(Logic::k1, a, b).value(), 2u);
}

TEST(Primitives, MuxUnknownSelectKeepsAgreeingBits) {
  const LogicVector a = LogicVector::of(4, 0b1010);
  const LogicVector b = LogicVector::of(4, 0b1001);
  const LogicVector out = mux2(Logic::kX, a, b);
  EXPECT_EQ(out.at(3), Logic::k1);  // both agree
  EXPECT_EQ(out.at(2), Logic::k0);
  EXPECT_EQ(out.at(1), Logic::kX);  // disagree
  EXPECT_EQ(out.at(0), Logic::kX);
}

TEST(Primitives, WidthAdapters) {
  const LogicVector v = LogicVector::of(8, 0x80);
  EXPECT_EQ(zero_extend(v, 16).value(), 0x80u);
  EXPECT_EQ(sign_extend_v(v, 16).value(), 0xFF80u);
  EXPECT_EQ(truncate(LogicVector::of(16, 0x1234), 8).value(), 0x34u);
  EXPECT_EQ(slice(LogicVector::of(16, 0x1234), 4, 8).value(), 0x23u);
  EXPECT_EQ(concat(LogicVector::of(4, 0xA), LogicVector::of(4, 0x5)).value(),
            0xA5u);
}

TEST(Primitives, WidthMismatchRejected) {
  EXPECT_THROW(rc_add(LogicVector::of(8, 0), LogicVector::of(4, 0)),
               SimError);
  EXPECT_THROW(zero_extend(LogicVector::of(8, 0), 4), SimError);
  EXPECT_THROW(truncate(LogicVector::of(8, 0), 16), SimError);
  EXPECT_THROW(slice(LogicVector::of(8, 0), 4, 8), SimError);
}

}  // namespace
}  // namespace mbcosim::rtl
