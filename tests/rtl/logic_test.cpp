// Four-valued logic and LogicVector tests.
#include "rtl/logic.hpp"

#include <gtest/gtest.h>

namespace mbcosim::rtl {
namespace {

TEST(Logic, TruthTables) {
  EXPECT_EQ(logic_and(Logic::k1, Logic::k1), Logic::k1);
  EXPECT_EQ(logic_and(Logic::k1, Logic::k0), Logic::k0);
  EXPECT_EQ(logic_and(Logic::k0, Logic::kX), Logic::k0);  // 0 dominates
  EXPECT_EQ(logic_and(Logic::k1, Logic::kX), Logic::kX);

  EXPECT_EQ(logic_or(Logic::k0, Logic::k0), Logic::k0);
  EXPECT_EQ(logic_or(Logic::k1, Logic::kX), Logic::k1);  // 1 dominates
  EXPECT_EQ(logic_or(Logic::k0, Logic::kX), Logic::kX);

  EXPECT_EQ(logic_xor(Logic::k1, Logic::k0), Logic::k1);
  EXPECT_EQ(logic_xor(Logic::k1, Logic::k1), Logic::k0);
  EXPECT_EQ(logic_xor(Logic::k1, Logic::kX), Logic::kX);

  EXPECT_EQ(logic_not(Logic::k0), Logic::k1);
  EXPECT_EQ(logic_not(Logic::kX), Logic::kX);
  EXPECT_EQ(logic_not(Logic::kZ), Logic::kX);
}

TEST(LogicVector, KnownValue) {
  const LogicVector v = LogicVector::of(8, 0xA5);
  EXPECT_TRUE(v.is_fully_known());
  EXPECT_EQ(v.value(), 0xA5u);
  EXPECT_EQ(v.at(0), Logic::k1);
  EXPECT_EQ(v.at(1), Logic::k0);
  EXPECT_EQ(v.at(7), Logic::k1);
}

TEST(LogicVector, ValueMasksToWidth) {
  const LogicVector v = LogicVector::of(4, 0xFF);
  EXPECT_EQ(v.value(), 0xFu);
}

TEST(LogicVector, UnknownVector) {
  const LogicVector x = LogicVector::unknown(8);
  EXPECT_FALSE(x.is_fully_known());
  EXPECT_THROW(x.value(), SimError);
  EXPECT_EQ(x.at(3), Logic::kX);
}

TEST(LogicVector, SetBits) {
  LogicVector v = LogicVector::of(4, 0);
  v.set(2, Logic::k1);
  EXPECT_EQ(v.value(), 4u);
  v.set(2, Logic::kX);
  EXPECT_FALSE(v.is_fully_known());
  v.set(2, Logic::k0);
  EXPECT_EQ(v.value(), 0u);
}

TEST(LogicVector, BoundsChecked) {
  LogicVector v = LogicVector::of(4, 0);
  EXPECT_THROW(v.at(4), SimError);
  EXPECT_THROW(v.set(4, Logic::k1), SimError);
  EXPECT_THROW(LogicVector::of(0, 0), SimError);
  EXPECT_THROW(LogicVector::of(65, 0), SimError);
  EXPECT_NO_THROW(LogicVector::of(64, ~u64{0}).value());
}

TEST(LogicVector, ToString) {
  LogicVector v = LogicVector::of(4, 0b1010);
  EXPECT_EQ(v.to_string(), "1010");
  v.set(1, Logic::kX);
  EXPECT_EQ(v.to_string(), "10X0");
}

TEST(LogicVector, Equality) {
  EXPECT_EQ(LogicVector::of(8, 5), LogicVector::of(8, 5));
  EXPECT_FALSE(LogicVector::of(8, 5) == LogicVector::of(8, 6));
  EXPECT_FALSE(LogicVector::of(8, 5) == LogicVector::of(16, 5));
  EXPECT_EQ(LogicVector::unknown(8), LogicVector::unknown(8));
}

}  // namespace
}  // namespace mbcosim::rtl
