// FSL channel and hub unit tests (FIFO semantics, flags, statistics).
#include "fsl/fsl_channel.hpp"

#include <gtest/gtest.h>

#include "fsl/fsl_hub.hpp"

namespace mbcosim::fsl {
namespace {

TEST(FslChannel, StartsEmpty) {
  FslChannel ch;
  EXPECT_FALSE(ch.exists());
  EXPECT_FALSE(ch.full());
  EXPECT_EQ(ch.occupancy(), 0u);
  EXPECT_EQ(ch.depth(), FslChannel::kDefaultDepth);
}

TEST(FslChannel, FifoOrder) {
  FslChannel ch;
  ch.try_write(1, false);
  ch.try_write(2, true);
  ch.try_write(3, false);
  EXPECT_EQ(ch.try_read()->data, 1u);
  EXPECT_EQ(ch.try_read()->data, 2u);
  EXPECT_EQ(ch.try_read()->data, 3u);
  EXPECT_FALSE(ch.try_read().has_value());
}

TEST(FslChannel, ControlBitTravelsWithData) {
  FslChannel ch;
  ch.try_write(7, true);
  const auto entry = ch.try_read();
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->control);
}

TEST(FslChannel, FullFlagBlocksWrites) {
  FslChannel ch(2);
  EXPECT_TRUE(ch.try_write(1, false));
  EXPECT_TRUE(ch.try_write(2, false));
  EXPECT_TRUE(ch.full());
  EXPECT_FALSE(ch.try_write(3, false));
  EXPECT_EQ(ch.refused_writes(), 1u);
  (void)ch.try_read();
  EXPECT_FALSE(ch.full());
  EXPECT_TRUE(ch.try_write(3, false));
}

TEST(FslChannel, PeekDoesNotConsume) {
  FslChannel ch;
  ch.try_write(9, false);
  EXPECT_EQ(ch.peek()->data, 9u);
  EXPECT_EQ(ch.occupancy(), 1u);
  EXPECT_EQ(ch.try_read()->data, 9u);
  EXPECT_FALSE(ch.peek().has_value());
}

TEST(FslChannel, StatisticsTrackTraffic) {
  FslChannel ch(4);
  for (int i = 0; i < 3; ++i) ch.try_write(i, false);
  (void)ch.try_read();
  EXPECT_EQ(ch.total_writes(), 3u);
  EXPECT_EQ(ch.total_reads(), 1u);
  EXPECT_EQ(ch.max_occupancy(), 3u);
  ch.reset_stats();
  EXPECT_EQ(ch.total_writes(), 0u);
  EXPECT_EQ(ch.max_occupancy(), ch.occupancy());
}

TEST(FslChannel, ClearEmpties) {
  FslChannel ch;
  ch.try_write(1, false);
  ch.clear();
  EXPECT_FALSE(ch.exists());
}

TEST(FslChannel, ZeroDepthRejected) {
  EXPECT_THROW(FslChannel(0), SimError);
}

TEST(FslHub, ChannelsAreIndependent) {
  FslHub hub;
  hub.to_hw(0).try_write(1, false);
  hub.to_hw(7).try_write(2, false);
  hub.from_hw(0).try_write(3, false);
  EXPECT_EQ(hub.to_hw(0).occupancy(), 1u);
  EXPECT_EQ(hub.to_hw(7).occupancy(), 1u);
  EXPECT_EQ(hub.to_hw(1).occupancy(), 0u);
  EXPECT_EQ(hub.from_hw(0).occupancy(), 1u);
}

TEST(FslHub, RangeChecked) {
  FslHub hub;
  EXPECT_THROW(hub.to_hw(8), SimError);
  EXPECT_THROW(hub.from_hw(99), SimError);
}

TEST(FslHub, ClearAffectsAllChannels) {
  FslHub hub;
  hub.to_hw(3).try_write(1, false);
  hub.from_hw(4).try_write(2, false);
  hub.clear();
  EXPECT_FALSE(hub.to_hw(3).exists());
  EXPECT_FALSE(hub.from_hw(4).exists());
}

}  // namespace
}  // namespace mbcosim::fsl
